(* Bechamel micro-benchmarks: one Test.make per paper table/figure,
   measuring the computational kernel that regenerates it, plus the core
   protocol primitives. Run with `dune exec bench/main.exe`. *)

(* Alias the raw clock before the opens: Toolkit shadows Monotonic_clock
   with its MEASURE wrapper, which has no [now]. *)
module Raw_clock = Monotonic_clock

open Bechamel
open Toolkit
module E = Concilium_experiments
module World = Concilium_core.World
module Blame = Concilium_core.Blame
module Accusation_model = Concilium_core.Accusation_model
module Bandwidth = Concilium_core.Bandwidth
module Density_test = Concilium_overlay.Density_test
module Jump_table_model = Concilium_overlay.Jump_table_model
module Pastry = Concilium_overlay.Pastry
module Id = Concilium_overlay.Id
module Minc = Concilium_tomography.Minc
module Probing = Concilium_tomography.Probing
module Observation = Concilium_tomography.Observation
module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool
module Graph = Concilium_topology.Graph
module Routes = Concilium_topology.Routes
module Tree = Concilium_tomography.Tree
module Logical_tree = Concilium_tomography.Logical_tree
module Trace = Concilium_obs.Trace

(* Self-profiling: the harness's own stages run inside spans on the process
   monotonic clock (relative to startup), and --json/--out fold the
   completed spans into a "profile" section — the bench binary eats its own
   observability dogfood. *)
let profile_trace = Trace.create ()
let bench_t0 = Raw_clock.now ()
let elapsed () = Int64.to_float (Int64.sub (Raw_clock.now ()) bench_t0) /. 1e9

let profiled name f =
  let span = Trace.span_open profile_trace ~time:(elapsed ()) ~cat:"bench" name in
  let result = f () in
  Trace.span_close profile_trace ~time:(elapsed ()) span;
  result

(* Shared fixtures, built once. *)
let world = lazy (World.build (World.tiny_config ~seed:2024L))

let blame_world =
  lazy
    (E.Blame_world.create ~world:(Lazy.force world)
       {
         (E.Blame_world.paper_config ~colluding_fraction:0. ~seed:3L) with
         E.Blame_world.duration = 1800.;
       })

let minc_fixture =
  lazy
    (let w = Lazy.force world in
     let tree = w.World.trees.(0) in
     let logical = w.World.logical.(0) in
     let rng = Prng.of_seed 5L in
     let rounds = Probing.probe_rounds ~rng ~loss_of_link:(fun _ -> 0.02) ~tree ~count:100 () in
     (logical, Probing.acked_matrix rounds))

let observation_fixture =
  lazy
    (let store = Observation.create () in
     let rng = Prng.of_seed 6L in
     for _ = 1 to 5_000 do
       Observation.record store
         {
           Observation.time = Prng.float rng 7200.;
           prober = Prng.int rng 50;
           link = Prng.int rng 200;
           up = Prng.bool rng;
         }
     done;
     store)

let fig1_bench =
  Test.make ~name:"fig1:occupancy-model+monte-carlo"
    (Staged.stage @@ fun () ->
     let rng = Prng.of_seed 1L in
     ignore (Jump_table_model.model ~n:10_000);
     ignore (Jump_table_model.monte_carlo_occupancy ~rng ~n:2_000 ~trials:1))

let fig2_bench =
  Test.make ~name:"fig2:density-error-rates"
    (Staged.stage @@ fun () ->
     ignore
       (Density_test.rates ~gamma:1.2
          { Density_test.n = 100_000; colluding_fraction = 0.2; suppression = false }))

let fig3_bench =
  Test.make ~name:"fig3:density-error-rates-suppression"
    (Staged.stage @@ fun () ->
     ignore
       (Density_test.rates ~gamma:1.2
          { Density_test.n = 100_000; colluding_fraction = 0.2; suppression = true }))

let fig4_bench =
  Test.make ~name:"fig4:forest-coverage-per-host"
    (Staged.stage @@ fun () ->
     let w = Lazy.force world in
     let rng = Prng.of_seed 4L in
     ignore (E.Fig4.run ~world:w ~rng ~host_sample:3 ()))

let fig5_bench =
  Test.make ~name:"fig5:blame-judgment-x10"
    (Staged.stage @@ fun () ->
     let bw = Lazy.force blame_world in
     let rng = Prng.of_seed 7L in
     for _ = 1 to 10 do
       ignore (E.Blame_world.sample_judgment bw ~rng)
     done)

let fig6_bench =
  Test.make ~name:"fig6:accusation-error-sweep"
    (Staged.stage @@ fun () ->
     for m = 1 to 30 do
       ignore (Accusation_model.false_positive ~w:100 ~m ~p_good:0.018);
       ignore (Accusation_model.false_negative ~w:100 ~m ~p_faulty:0.938)
     done)

let bandwidth_bench =
  Test.make ~name:"sec4.4:bandwidth-model"
    (Staged.stage @@ fun () -> ignore (Bandwidth.report Bandwidth.paper_params))

(* Batched x10 over spread drop times: one Eq. 2 evaluation is too short
   for a trustworthy per-run fit (the un-batched version measured r² < 0),
   and the fixture is forced before measurement (see [force_fixtures]). *)
let blame_eq2_bench =
  Test.make ~name:"core:blame-equation-2-x10"
    (Staged.stage @@ fun () ->
     let store = Lazy.force observation_fixture in
     for i = 1 to 10 do
       ignore
         (Blame.blame Blame.paper_config ~observations:store ~links:[| 1; 2; 3; 4; 5 |]
            ~drop_time:(600. *. float_of_int i) ~exclude_prober:0 ())
     done)

let minc_bench =
  Test.make ~name:"tomography:minc-inference-100-rounds"
    (Staged.stage @@ fun () ->
     let logical, acked = Lazy.force minc_fixture in
     ignore (Minc.infer logical ~acked))

(* A deliberately wide random tree (hundreds of leaves): the arena where the
   single-sweep [infer] beats the per-node-scan [infer_reference], whose cost
   carries an extra factor of the leaf count. *)
let minc_large_fixture =
  lazy
    (let rng = Prng.of_seed 14L in
     let n = 600 in
     let b = Graph.Builder.create n in
     let has_child = Array.make n false in
     for i = 1 to n - 1 do
       let parent = Prng.int rng i in
       has_child.(parent) <- true;
       Graph.Builder.add_link b parent i
     done;
     let g = Graph.build b in
     let leaves =
       Array.of_list (List.filter (fun i -> not has_child.(i)) (List.init n (fun i -> i)))
     in
     let path target =
       match Routes.shortest_path g ~source:0 ~target with
       | Some p -> p
       | None -> invalid_arg "bench tree is connected by construction"
     in
     let tree = Tree.of_paths ~root:0 ~paths:(Array.map path leaves) in
     let logical = Logical_tree.of_tree tree in
     let leaf_count = Logical_tree.leaf_count logical in
     let acked =
       (* Lossy rounds: sparse acks force the reference's per-node
          [Array.exists] to actually scan its descendant leaf sets rather
          than exit on the first element. *)
       Array.init 1000 (fun _ -> Array.init leaf_count (fun _ -> Prng.bernoulli rng 0.05))
     in
     (logical, acked))

let minc_large_bench =
  Test.make ~name:"tomography:minc-inference-large"
    (Staged.stage @@ fun () ->
     let logical, acked = Lazy.force minc_large_fixture in
     ignore (Minc.infer logical ~acked))

let minc_reference_bench =
  Test.make ~name:"tomography:minc-reference-large"
    (Staged.stage @@ fun () ->
     let logical, acked = Lazy.force minc_large_fixture in
     ignore (Minc.infer_reference logical ~acked))

(* End-to-end figure regeneration, sequential vs the domain pool. On a
   single-core host the pool degrades to the inline path, so the pair also
   doubles as a pool-overhead check. Trials are 8 per size so the largest
   size splits into 8 tasks — with 4 the four big tasks cap the pool's
   ideal speedup near 6x on 8 domains; with 8 the cap is comfortably
   above it. *)
let fig1_sizes = [| 128; 256; 512; 1024 |]
let fig1_trials = 8

let fig1_e2e_sequential_bench =
  Test.make ~name:"experiments:fig1-end-to-end-sequential"
    (Staged.stage @@ fun () ->
     ignore (E.Fig1.run ~seed:2025L ~sizes:fig1_sizes ~trials:fig1_trials ()))

(* Sized from --domains when given, else the host's core count. *)
let requested_domains = ref None
let shared_pool = lazy (Pool.create ?domains:!requested_domains ())

let fig1_e2e_pool_bench =
  Test.make ~name:"experiments:fig1-end-to-end-pool"
    (Staged.stage @@ fun () ->
     let pool = Lazy.force shared_pool in
     ignore (E.Fig1.run ~pool ~seed:2025L ~sizes:fig1_sizes ~trials:fig1_trials ()))

(* Pool-scaling microbenches: dispatch cost of a fan-out whose tasks are
   nearly free. The per-run estimate is the scheduling overhead the
   work-stealing pool adds on top of Array.init — claim cadence, steal
   scans, and the submit/join handshake. *)
let pool_fanout_bench =
  Test.make ~name:"pool:fanout-256-trivial-tasks"
    (Staged.stage @@ fun () ->
     let pool = Lazy.force shared_pool in
     ignore (Pool.parallel_init ~pool 256 ~f:(fun i -> i * i)))

let pool_fanout_inline_bench =
  Test.make ~name:"pool:fanout-256-trivial-tasks-inline"
    (Staged.stage @@ fun () -> ignore (Pool.parallel_init 256 ~f:(fun i -> i * i)))

let pastry_route_bench =
  Test.make ~name:"overlay:pastry-route"
    (Staged.stage @@ fun () ->
     let w = Lazy.force world in
     let rng = Prng.of_seed 8L in
     let dest = Id.random rng in
     ignore (Pastry.route w.World.pastry ~from:0 ~dest))

let secure_table_bench =
  Test.make ~name:"overlay:secure-table-build"
    (Staged.stage @@ fun () ->
     let rng = Prng.of_seed 9L in
     let sorted = Array.init 500 (fun i -> (Id.random rng, i)) in
     Array.sort (fun (a, _) (b, _) -> Id.compare a b) sorted;
     ignore (Concilium_overlay.Routing_table.build_secure ~owner:(fst sorted.(250)) ~sorted))

let sha256_bench =
  Test.make ~name:"crypto:sha256-1KiB"
    (Staged.stage @@ fun () -> ignore (Concilium_crypto.Sha256.digest (String.make 1024 'x')))

let chord_fixture =
  lazy
    (let rng = Prng.of_seed 10L in
     let ids = Array.init 500 (fun _ -> Id.random rng) in
     Concilium_overlay.Chord.build ids)

(* Batched x16 over a fixed dest sequence: one jump-table route is a few
   microseconds, short enough that the un-batched fit measured r² < 0. *)
let chord_route_bench =
  Test.make ~name:"overlay:chord-route-x16"
    (Staged.stage @@ fun () ->
     let overlay = Lazy.force chord_fixture in
     let rng = Prng.of_seed 11L in
     for _ = 1 to 16 do
       ignore (Concilium_overlay.Chord.route overlay ~from:0 ~dest:(Id.random rng))
     done)

let chord_route_reference_bench =
  Test.make ~name:"overlay:chord-route-reference"
    (Staged.stage @@ fun () ->
     (* The retained linear-scan forwarding, driven through the same route
        shape as overlay:chord-route: the guard below checks the O(log n)
        jump-table path never regresses past this baseline. *)
     let overlay = Lazy.force chord_fixture in
     let rng = Prng.of_seed 11L in
     let dest = Id.random rng in
     let owner = Concilium_overlay.Chord.successor_of_key overlay dest in
     let rec loop current remaining =
       if current = owner || remaining = 0 then ()
       else begin
         match Concilium_overlay.Chord.next_hop_reference overlay ~from:current ~dest with
         | None -> ()
         | Some next -> loop next (remaining - 1)
       end
     in
     loop 0 756)

let secure_routing_bench =
  Test.make ~name:"overlay:redundant-route"
    (Staged.stage @@ fun () ->
     let w = Lazy.force world in
     let rng = Prng.of_seed 12L in
     ignore
       (Concilium_overlay.Secure_routing.redundant_route w.World.pastry ~from:0
          ~dest:(Id.random rng)
          ~faulty:(fun v -> v mod 7 = 3)))

let validation_bench =
  Test.make ~name:"core:snapshot-validation"
    (Staged.stage @@ fun () ->
     (* Verifying a full accusation exercises signature checks, vote
        re-validation and the blame recomputation. *)
     let pki = Concilium_crypto.Pki.create ~seed:13L in
     let cert, secret = Concilium_crypto.Pki.issue pki ~address:"b" ~node_id:"bench" in
     let signature = Concilium_crypto.Pki.sign secret "bench-payload" in
     ignore (Concilium_crypto.Pki.verify pki cert.Concilium_crypto.Pki.subject_key "bench-payload" signature))

let chaos_bench =
  Test.make ~name:"netsim:chaos-sample+compile"
    (Staged.stage @@ fun () ->
     (* The per-scenario setup cost of the soak runner: draw a busy fault
        plan over an hour and compile it onto a fresh engine. *)
     let module Engine = Concilium_netsim.Engine in
     let module Link_state = Concilium_netsim.Link_state in
     let module Chaos = Concilium_netsim.Chaos in
     let plan =
       Chaos.sample ~rng:(Prng.of_seed 14L) ~config:Chaos.paper_rates
         ~links:(Array.init 500 Fun.id) ~nodes:100
         ~cuts:[| Array.init 10 Fun.id |]
         ~horizon:3600.
     in
     let engine = Engine.create () in
     let link_state = Link_state.create ~link_count:500 ~good_loss:0.001 ~bad_loss:1. in
     let chaos = Chaos.compile ~engine ~link_state plan in
     Engine.run engine;
     ignore (Chaos.node_online chaos ~time:1800. 0))

let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]

(* Force every heavy fixture before any measurement starts. Lazy fixtures
   forced from inside a staged closure bill their construction to the first
   measured run — an outlier large enough to drive the OLS fit's r² negative
   (core:blame-equation-2 and overlay:chord-route both exhibited this). *)
let force_fixtures () =
  profiled "bench.fixtures" (fun () ->
      ignore (Lazy.force world);
      ignore (Lazy.force blame_world);
      ignore (Lazy.force minc_fixture);
      ignore (Lazy.force observation_fixture);
      ignore (Lazy.force minc_large_fixture);
      ignore (Lazy.force chord_fixture);
      ignore (Lazy.force shared_pool))

let benchmark () =
  force_fixtures ();
  let tests =
    [
      fig1_bench;
      fig2_bench;
      fig3_bench;
      fig4_bench;
      fig5_bench;
      fig6_bench;
      bandwidth_bench;
      blame_eq2_bench;
      minc_bench;
      minc_large_bench;
      minc_reference_bench;
      fig1_e2e_sequential_bench;
      fig1_e2e_pool_bench;
      pool_fanout_bench;
      pool_fanout_inline_bench;
      pastry_route_bench;
      secure_table_bench;
      sha256_bench;
      chord_route_bench;
      chord_route_reference_bench;
      secure_routing_bench;
      validation_bench;
      chaos_bench;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let test = Test.make_grouped ~name:"concilium" ~fmt:"%s %s" tests in
  let raw_results = profiled "bench.measure" (fun () -> Benchmark.all cfg instances test) in
  let results =
    profiled "bench.analyze" (fun () ->
        List.map (fun instance -> Analyze.all ols instance raw_results) instances)
  in
  (Analyze.merge ols instances results, raw_results)

(* ---------- Output ---------- *)

(* An OLS fit with a weak (or negative) r² means the ns/run estimate is
   noise-dominated — comparisons against it are not actionable. Flag such
   rows instead of letting them masquerade as measurements. *)
let low_confidence_threshold = 0.5

let low_confidence r_square = Float.is_nan r_square || r_square < low_confidence_threshold

(* Collected rows are sorted by name because Hashtbl iteration order is
   seed-dependent. *)
let rows_of_results results =
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure per_test ->
      Hashtbl.iter
        (fun name ols ->
          let ns_per_run =
            match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> 0.
          in
          let r_square =
            match Analyze.OLS.r_square ols with Some r -> r | None -> 0.
          in
          rows := (name, ns_per_run, r_square) :: !rows)
        per_test)
    results;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows

(* Machine-readable dump for BENCH_baseline.json: one record per benchmark
   with the OLS ns/run estimate, plus the harness's own profile spans. *)
let json_of_results results =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.bprintf buf fmt in
  let rows = rows_of_results results in
  add "{\n";
  add "  \"host\": { \"cores\": %d, \"ocaml\": %S },\n"
    (Pool.default_domains ()) Sys.ocaml_version;
  add "  \"unit\": \"ns/run\",\n";
  add "  \"results\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      add "    { \"name\": %S, \"ns_per_run\": %.1f, \"r_square\": %.4f, \
           \"low_confidence\": %b }%s\n"
        name ns r2 (low_confidence r2)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n";
  let spans = Trace.completed_spans profile_trace in
  add "  \"profile\": [\n";
  List.iteri
    (fun i (name, start, duration) ->
      add "    { \"stage\": %S, \"start_s\": %.3f, \"duration_s\": %.3f }%s\n" name start
        duration
        (if i = List.length spans - 1 then "" else ","))
    spans;
  add "  ],\n";
  (* Per-domain activity of the shared pool, so a pool-vs-sequential gap is
     attributable: all idle = starved submitter, all steal-wait = chunks too
     fine. Only forced when a pooled benchmark actually ran. *)
  let pool_stats = if Lazy.is_val shared_pool then Pool.stats (Lazy.force shared_pool) else [] in
  add "  \"pool\": [\n";
  List.iteri
    (fun i { Pool.worker; busy_s; idle_s; steal_wait_s; chunks; steals; empty_scans; wakeups } ->
      add
        "    { \"worker\": %d, \"busy_s\": %.6f, \"idle_s\": %.6f, \"steal_wait_s\": %.6f, \
         \"chunks\": %d, \"steals\": %d, \"empty_scans\": %d, \"wakeups\": %d }%s\n"
        worker busy_s idle_s steal_wait_s chunks steals empty_scans wakeups
        (if i = List.length pool_stats - 1 then "" else ","))
    pool_stats;
  add "  ]\n}\n";
  Buffer.contents buf

let render_flags rows =
  let flagged = List.filter (fun (_, _, r2) -> low_confidence r2) rows in
  List.iter
    (fun (name, ns, r2) ->
      Printf.printf "low-confidence %-45s %10.1f ns/run (r_square=%.4f < %.1f)\n" name ns r2
        low_confidence_threshold)
    flagged;
  if flagged <> [] then
    Printf.printf "%d of %d estimates are noise-dominated; treat their ns/run as indicative only.\n"
      (List.length flagged) (List.length rows)

(* Regression guards: relationships between benchmarks that must hold
   regardless of absolute host speed. *)
let render_guards rows =
  let find suffix =
    List.find_map
      (fun (name, ns, r2) ->
        let n = String.length name and s = String.length suffix in
        if n >= s && String.sub name (n - s) s = suffix then Some (ns, r2) else None)
      rows
  in
  match (find "overlay:chord-route-x16", find "overlay:chord-route-reference") with
  | Some (batch, fast_r2), Some (reference, ref_r2) ->
      (* The fast bench routes 16 times per run (batched for fit quality),
         the reference routes once: compare amortised per-route cost. The
         O(log n) jump table must beat the linear-scan baseline. *)
      let fast = batch /. 16. in
      let ratio = if reference > 0. then fast /. reference else Float.infinity in
      let confident = not (low_confidence fast_r2 || low_confidence ref_r2) in
      let ok = ratio <= 1.0 || not confident in
      Printf.printf "guard chord-route-x16 <= reference: %.1f vs %.1f ns/run (%.2fx) %s\n" fast
        reference ratio
        (if ratio <= 1.0 then if confident then "ok" else "ok (low confidence)"
         else if not confident then "skipped (low confidence)"
         else "FAILED");
      ok
  | _ ->
      print_endline "guard chord-route-x16 <= reference: benchmarks missing, FAILED";
      false

(* A negative r² is worse than low confidence: the fit is anti-correlated
   with the run count, i.e. the benchmark harness itself is broken (cold
   fixture, quota too small for the workload). That is a bug in this file,
   not a property of the host, so it fails the run in every mode. *)
let check_no_negative_r2 rows =
  let negative = List.filter (fun (_, _, r2) -> r2 < 0.) rows in
  List.iter
    (fun (name, ns, r2) ->
      Printf.eprintf "NEGATIVE r_square %-45s %10.1f ns/run (r_square=%.4f)\n" name ns r2)
    negative;
  if negative <> [] then begin
    Printf.eprintf
      "%d estimate(s) have r_square < 0: the fit is invalid (setup cost inside the measured \
       closure?). Failing.\n"
      (List.length negative);
    false
  end
  else true

(* ---------- Multicore speedup curve (--multicore FILE) ----------

   Not a bechamel bench: wall-clocks the full fig1 pipeline sequentially and
   under pools of 1/2/4/8 domains, median of five runs each, and emits a
   BENCH_multicore.json document. Verifies pooled output structurally equals
   the sequential reference (the pool's byte-identity contract), and with
   --assert-speedup X exits nonzero unless the best pooled run beats the
   sequential one by at least X — CI runs this as the bench-multicore smoke
   test. *)
let multicore_domains = [ 1; 2; 4; 8 ]
let multicore_reps = 5

let multicore ~out ~assert_speedup =
  let run_fig1 ?pool () = E.Fig1.run ?pool ~seed:2025L ~sizes:fig1_sizes ~trials:fig1_trials () in
  let median times =
    let sorted = List.sort compare times in
    List.nth sorted (List.length sorted / 2)
  in
  let sample f =
    let result = ref None in
    let times =
      List.init multicore_reps (fun _ ->
          let t0 = Raw_clock.now () in
          result := Some (f ());
          Int64.to_float (Int64.sub (Raw_clock.now ()) t0) /. 1e9)
    in
    (Option.get !result, median times)
  in
  let reference, sequential_s = sample (fun () -> run_fig1 ()) in
  let curve =
    List.map
      (fun domains ->
        Pool.with_pool ~domains (fun pool ->
            let result, s = sample (fun () -> run_fig1 ~pool ()) in
            if result <> reference then begin
              Printf.eprintf
                "multicore: fig1 output under --domains %d differs from sequential output\n"
                domains;
              exit 1
            end;
            (domains, s, sequential_s /. s)))
      multicore_domains
  in
  let best_speedup = List.fold_left (fun acc (_, _, sp) -> Float.max acc sp) 0. curve in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.bprintf buf fmt in
  add "{\n";
  add "  \"host\": { \"cores\": %d, \"ocaml\": %S },\n" (Pool.default_domains ()) Sys.ocaml_version;
  add "  \"workload\": \"fig1 end-to-end, sizes [128;256;512;1024], trials %d, median of %d runs\",\n"
    fig1_trials multicore_reps;
  add "  \"sequential_s\": %.6f,\n" sequential_s;
  add "  \"curve\": [\n";
  List.iteri
    (fun i (domains, s, speedup) ->
      add "    { \"domains\": %d, \"s\": %.6f, \"speedup\": %.3f }%s\n" domains s speedup
        (if i = List.length curve - 1 then "" else ","))
    curve;
  add "  ],\n";
  add "  \"best_speedup\": %.3f\n}\n" best_speedup;
  let document = Buffer.contents buf in
  (match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc document);
      Printf.printf "multicore json -> %s\n" path
  | None -> print_string document);
  List.iter
    (fun (domains, s, speedup) ->
      Printf.printf "domains=%d  %.3fs  (%.2fx vs sequential %.3fs)\n" domains s speedup
        sequential_s)
    curve;
  match assert_speedup with
  | Some threshold when best_speedup < threshold ->
      Printf.eprintf "ASSERT-SPEEDUP FAILED: best pooled speedup %.2fx < required %.2fx\n"
        best_speedup threshold;
      exit 1
  | Some threshold ->
      Printf.printf "assert-speedup ok: best %.2fx >= %.2fx\n" best_speedup threshold
  | None -> ()

let render_table results =
  let open Bechamel_notty in
  let rect =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { w; h }
    | None -> { w = 120; h = 1 }
  in
  List.iter (fun v -> Unit.add v (Measure.unit v)) Instance.[ monotonic_clock ];
  Multiple.image_of_ols_results ~rect ~predictor:Measure.run results
  |> Notty_unix.eol |> Notty_unix.output_image

let () =
  (* --json prints the JSON document to stdout (historical behaviour, but
     it interleaves with dune's progress output when run via `dune exec`);
     --out FILE writes the same document to FILE and keeps stdout
     human-readable. --domains N sizes the shared pool (default: host core
     count). --multicore FILE skips the bechamel benches and writes the
     sequential-vs-pool speedup curve instead; --assert-speedup X makes it
     exit nonzero below X. *)
  let json = Array.exists (String.equal "--json") Sys.argv in
  let out = ref None in
  let multicore_out = ref None in
  let multicore_mode = ref false in
  let assert_speedup = ref None in
  Array.iteri
    (fun i arg ->
      let value () = if i + 1 < Array.length Sys.argv then Some Sys.argv.(i + 1) else None in
      match arg with
      | "--out" -> out := value ()
      | "--domains" ->
          requested_domains := Option.map int_of_string (value ())
      | "--multicore" ->
          multicore_mode := true;
          (* FILE is optional: bare --multicore prints the JSON to stdout. *)
          (match value () with
          | Some v when String.length v >= 2 && String.sub v 0 2 = "--" -> ()
          | v -> multicore_out := v)
      | "--assert-speedup" -> assert_speedup := Option.map float_of_string (value ())
      | _ -> ())
    Sys.argv;
  if !multicore_mode then multicore ~out:!multicore_out ~assert_speedup:!assert_speedup
  else begin
    let results, _ = benchmark () in
    let rows = rows_of_results results in
    (match !out with
    | Some path ->
        let document = json_of_results results in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc document);
        render_table results;
        Printf.printf "json -> %s\n" path
    | None -> if json then print_string (json_of_results results) else render_table results);
    if not json then render_flags rows;
    let fit_ok = check_no_negative_r2 rows in
    let guards_ok = if json then true else render_guards rows in
    if not (guards_ok && fit_ok) then exit 1
  end
