(* The paper's running example, both ways.

   Scenario 1: a forwarder along A -> ... -> Z drops the message while all
   IP links are healthy. Recursive stewardship produces a chain of guilty
   verdicts that settles on the true culprit, exonerating innocent hops.

   Scenario 2: the same route, but now an IP link on a forwarder's egress
   path is down and the forwarder is honest. Collaborative tomography has
   probed the link as bad, so blame lands on the network and the forwarder
   walks free.

       dune exec examples/diagnose_route.exe *)

module World = Concilium_core.World
module Protocol = Concilium_core.Protocol
module Stewardship = Concilium_core.Stewardship
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Graph = Concilium_topology.Graph
module Routes = Concilium_topology.Routes
module Id = Concilium_overlay.Id
module Prng = Concilium_util.Prng

let world = World.build (World.tiny_config ~seed:1234L)

let find_route () =
  let rng = Prng.of_seed 5L in
  let rec pick attempts best =
    if attempts = 0 then best
    else begin
      let from = Prng.int rng (World.node_count world) in
      let dest = Id.random rng in
      let route = World.overlay_route world ~from ~dest in
      let best =
        match best with
        | Some (_, _, r) when List.length r >= List.length route -> best
        | _ -> Some (from, dest, route)
      in
      pick (attempts - 1) best
    end
  in
  match pick 4000 None with
  | Some (from, dest, route) when List.length route >= 3 -> (from, dest, route)
  | _ -> failwith "no multi-hop route in this world"

let fresh_session behavior =
  let engine = Engine.create () in
  let link_state =
    Link_state.create
      ~link_count:(Graph.link_count world.World.generated.World.Generate.graph)
      ~good_loss:0. ~bad_loss:1.
  in
  let protocol =
    Protocol.create ~world ~engine ~link_state ~rng:(Prng.of_seed 6L)
      Protocol.default_config ~behavior
  in
  (engine, link_state, protocol)

let describe route outcome =
  Printf.printf "  route: %s\n" (String.concat " -> " (List.map string_of_int route));
  (match outcome.Protocol.drop with
  | Some (Protocol.Dropped_by_overlay v) -> Printf.printf "  ground truth: node %d ate it\n" v
  | Some (Protocol.Dropped_on_ip_link l) -> Printf.printf "  ground truth: IP link %d lost it\n" l
  | Some (Protocol.Ack_lost_on_link l) -> Printf.printf "  ground truth: ack lost on link %d\n" l
  | Some (Protocol.Hop_offline v) -> Printf.printf "  ground truth: node %d was offline\n" v
  | None -> print_endline "  ground truth: delivered");
  match outcome.Protocol.diagnosis with
  | Some
      (Protocol.Diagnosed
        { Stewardship.final = Some (Stewardship.Next_hop blamed); exonerated; _ }) ->
      Printf.printf "  verdict: node %d is at fault\n" blamed;
      if exonerated <> [] then
        Printf.printf "  exonerated via pushed-up revisions: %s\n"
          (String.concat ", " (List.map string_of_int exonerated))
  | Some (Protocol.Diagnosed { Stewardship.final = Some Stewardship.Network; exonerated; _ })
    ->
      print_endline "  verdict: the IP network is at fault";
      if exonerated <> [] then
        Printf.printf "  exonerated: %s\n" (String.concat ", " (List.map string_of_int exonerated))
  | Some (Protocol.Diagnosed { Stewardship.final = Some (Stewardship.Offline v); _ }) ->
      Printf.printf "  verdict: node %d was offline; nobody misbehaved\n" v
  | Some (Protocol.Insufficient_evidence { judge; usable_rounds; required_rounds }) ->
      Printf.printf "  verdict: degraded -- judge %d gathered %d/%d usable rounds\n" judge
        usable_rounds required_rounds
  | _ -> print_endline "  verdict: none (insufficient evidence)"

let run_scenario title behavior prepare =
  Printf.printf "\n%s\n" title;
  let from, dest, route = find_route () in
  let engine, link_state, protocol = fresh_session behavior in
  prepare link_state route;
  Protocol.start_probing protocol ~horizon:1200.;
  Engine.run_until engine 600.;
  Protocol.send_message protocol ~from ~dest ~payload:"payload" ~on_outcome:(describe route);
  Engine.run_until engine 1200.

let () =
  let _, _, route = find_route () in
  (* Blame the deepest forwarder so the revision chain has work to do. *)
  let culprit = List.nth route (List.length route - 2) in
  run_scenario
    (Printf.sprintf "Scenario 1: forwarder %d drops the message (links healthy)" culprit)
    (fun v -> if v = culprit then Protocol.Message_dropper 1.0 else Protocol.Honest)
    (fun _ _ -> ());
  run_scenario "Scenario 2: an egress IP link is down (everyone honest)"
    (fun _ -> Protocol.Honest)
    (fun link_state route ->
      let hop1 = List.nth route 1 and hop2 = List.nth route 2 in
      match World.ip_path world ~from_node:hop1 ~to_node:hop2 with
      | Some path ->
          Array.iter (fun link -> Link_state.set_bad link_state link) path.Routes.links
      | None -> ())
