(* Quickstart: build a small simulated deployment, break one node, send a
   message through it, and watch Concilium name the culprit.

       dune exec examples/quickstart.exe *)

module World = Concilium_core.World
module Protocol = Concilium_core.Protocol
module Stewardship = Concilium_core.Stewardship
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Graph = Concilium_topology.Graph
module Id = Concilium_overlay.Id
module Prng = Concilium_util.Prng

let () =
  (* 1. A world: synthetic Internet + Pastry overlay + PKI, fully seeded. *)
  let world = World.build (World.tiny_config ~seed:42L) in
  Printf.printf "overlay of %d nodes on %d routers\n" (World.node_count world)
    (Graph.node_count world.World.generated.World.Generate.graph);

  (* 2. Pick a sender and a key whose route crosses an intermediate hop. *)
  let rng = Prng.of_seed 7L in
  let rec pick () =
    let from = Prng.int rng (World.node_count world) in
    let dest = Id.random rng in
    let route = World.overlay_route world ~from ~dest in
    if List.length route >= 3 then (from, dest, route) else pick ()
  in
  let from, dest, route = pick () in
  let culprit = List.nth route 1 in
  Printf.printf "route: %s\n"
    (String.concat " -> " (List.map string_of_int route));
  Printf.printf "node %d will silently drop everything it should forward\n" culprit;

  (* 3. Wire up the protocol: healthy links, one message-dropping node. *)
  let engine = Engine.create () in
  let link_state =
    Link_state.create
      ~link_count:(Graph.link_count world.World.generated.World.Generate.graph)
      ~good_loss:0. ~bad_loss:1.
  in
  let behavior v = if v = culprit then Protocol.Message_dropper 1.0 else Protocol.Honest in
  let protocol =
    Protocol.create ~world ~engine ~link_state ~rng:(Prng.of_seed 8L)
      Protocol.default_config ~behavior
  in

  (* 4. Let lightweight tomography warm up, then send. *)
  Protocol.start_probing protocol ~horizon:900.;
  Engine.run_until engine 600.;
  Protocol.send_message protocol ~from ~dest ~payload:"hello overlay"
    ~on_outcome:(fun outcome ->
      if outcome.Protocol.delivered then print_endline "delivered (unexpected!)"
      else begin
        match outcome.Protocol.diagnosis with
        | Some
            (Protocol.Diagnosed
              { Stewardship.final = Some (Stewardship.Next_hop blamed); exonerated; _ }) ->
            Printf.printf "Concilium blames node %d (ground truth: %d) %s\n" blamed culprit
              (if blamed = culprit then "-- correct" else "-- WRONG");
            if exonerated <> [] then
              Printf.printf "exonerated by recursive revision: %s\n"
                (String.concat ", " (List.map string_of_int exonerated))
        | Some (Protocol.Diagnosed { Stewardship.final = Some Stewardship.Network; _ }) ->
            print_endline "Concilium blames the IP network"
        | _ -> print_endline "no diagnosis"
      end);
  Engine.run_until engine 900.
