(* concilium-analysis: whole-program effect & determinism analysis.
   Builds the inter-module call graph, infers transitive effects, runs the
   pool race detector and the architecture layering checker.  Exits 0 when
   the tree is clean, 1 when any finding survives suppression, 2 on usage
   errors.  [--inject-bug] adds a named canary mutation so CI can prove the
   detectors still fire; [--expect-findings] inverts the exit code for
   those runs. *)

module Driver = Concilium_analysis.Driver
module Inject = Concilium_analysis.Inject

open Cmdliner

let paths =
  let doc = "Directories or files to scan (typically: lib bin)." in
  Arg.(value & pos_all string [ "lib"; "bin" ] & info [] ~docv:"PATH" ~doc)

let format =
  let doc = "Output format: $(b,text) or $(b,json)." in
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text & info [ "format" ] ~doc)

let layers =
  let doc = "Layers file for the architecture checker." in
  Arg.(value & opt string "analysis/layers.txt" & info [ "layers" ] ~docv:"FILE" ~doc)

let inject_bug =
  let doc =
    Printf.sprintf "Inject a named canary mutation before analysing (one of: %s)."
      (String.concat ", " Inject.names)
  in
  Arg.(value & opt_all string [] & info [ "inject-bug" ] ~docv:"NAME" ~doc)

let expect_findings =
  let doc = "Invert the exit code: fail when the analysis finds nothing (canary runs)." in
  Arg.(value & flag & info [ "expect-findings" ] ~doc)

let dump_callgraph =
  let doc = "Write the call graph to $(docv).dot and $(docv).jsonl." in
  Arg.(value & opt (some string) None & info [ "dump-callgraph" ] ~docv:"BASE" ~doc)

let dump_effects =
  let doc = "Write per-function effect summaries to $(docv) (JSONL)." in
  Arg.(value & opt (some string) None & info [ "dump-effects" ] ~docv:"FILE" ~doc)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let run paths format layers inject_bug expect_findings dump_callgraph dump_effects =
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  let unknown = List.filter (fun name -> Inject.find name = None) inject_bug in
  match (missing, unknown) with
  | path :: _, _ ->
      Printf.eprintf "analysis: no such path: %s\n" path;
      2
  | [], name :: _ ->
      Printf.eprintf "analysis: unknown canary %s (have: %s)\n" name
        (String.concat ", " Inject.names);
      2
  | [], [] -> (
      let inject = List.filter_map Inject.find inject_bug in
      match Driver.analyze_tree ~layers_path:layers ~inject ~paths with
      | Error message ->
          Printf.eprintf "analysis: %s\n" message;
          2
      | Ok report ->
          (match format with
          | `Text -> print_string (Driver.render_text report)
          | `Json -> print_string (Driver.render_json report));
          (match dump_callgraph with
          | Some base ->
              write_file (base ^ ".dot") (Driver.callgraph_dot report);
              write_file (base ^ ".jsonl") (Driver.callgraph_jsonl report)
          | None -> ());
          (match dump_effects with
          | Some path -> write_file path (Driver.effects_jsonl report)
          | None -> ());
          let clean = report.Driver.r_findings = [] in
          if expect_findings then if clean then 1 else 0 else if clean then 0 else 1)

let cmd =
  let doc = "whole-program effect & determinism analysis for the Concilium tree" in
  let info = Cmd.info "concilium-analysis" ~doc in
  Cmd.v info
    Term.(
      const run $ paths $ format $ layers $ inject_bug $ expect_findings $ dump_callgraph
      $ dump_effects)

let () = exit (Cmd.eval' cmd)
