(* End-to-end protocol simulation: build a world, inject link failures and
   misbehaving nodes, run lightweight probing, send messages, and print
   Concilium's per-drop diagnoses against ground truth. *)

module World = Concilium_core.World
module Protocol = Concilium_core.Protocol
module Stewardship = Concilium_core.Stewardship
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Link_history = Concilium_netsim.Link_history
module Failures = Concilium_netsim.Failures
module Churn = Concilium_netsim.Churn
module Graph = Concilium_topology.Graph
module Id = Concilium_overlay.Id
module Prng = Concilium_util.Prng
module Collector = Concilium_obs.Collector
module Export = Concilium_obs.Export
module Trace = Concilium_obs.Trace

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable correct_node : int; (* diagnosis named the true dropper *)
  mutable correct_network : int; (* network blamed and a link really dropped it *)
  mutable wrong : int;
  mutable undiagnosed : int;
}

let describe_target world = function
  | Stewardship.Network -> "the IP network"
  | Stewardship.Next_hop v -> Printf.sprintf "node %d (%s)" v (Id.to_hex (World.id_of world v))
  | Stewardship.Offline v ->
      Printf.sprintf "node %d (%s, offline)" v (Id.to_hex (World.id_of world v))

let run seed duration messages dropper_fraction drop_probability churn verbose trace_out
    metrics_out trace_filter domains =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  (* Per-shard collectors are pre-allocated before any work runs — the same
     contract the parallel drivers follow — and merged in fixed shard
     order, so --trace/--metrics output is byte-identical for any
     --domains value. The sim itself drives one sequential engine; the
     flag exercises harness symmetry, shard 0 does the recording. *)
  let observing = trace_out <> None || metrics_out <> None in
  let shards = Collector.shards (max 1 domains) in
  let obs = if observing then shards.(0) else Collector.noop in
  let world = World.build (World.small_config ~seed) in
  let graph = world.World.generated.World.Generate.graph in
  let node_count = World.node_count world in
  Printf.printf "world: %d routers, %d links, %d overlay nodes\n%!" (Graph.node_count graph)
    (Graph.link_count graph) node_count;
  let rng = Prng.of_seed (Int64.add seed 11L) in
  (* Ground-truth link failures, replayed into the live link state. *)
  let failures =
    Failures.generate ~rng:(Prng.split rng) ~config:Failures.paper_config
      ~link_count:(Graph.link_count graph) ~routes:(World.all_peer_paths world) ~duration
  in
  let engine = Engine.create () in
  let link_state =
    Link_state.create ~link_count:(Graph.link_count graph) ~good_loss:0.001 ~bad_loss:0.9
  in
  Link_history.replay failures.Failures.history ~engine ~state:link_state ~horizon:duration;
  (* A fraction of nodes silently drop messages they should forward. *)
  let dropper_count = int_of_float (Float.round (dropper_fraction *. float_of_int node_count)) in
  let droppers = Prng.sample_without_replacement rng dropper_count node_count in
  let is_dropper = Array.make node_count false in
  Array.iter (fun v -> is_dropper.(v) <- true) droppers;
  let behavior v =
    if is_dropper.(v) then Protocol.Message_dropper drop_probability else Protocol.Honest
  in
  let availability =
    if not churn then fun ~time:_ _ -> true
    else begin
      let timeline =
        Churn.generate ~rng:(Prng.split rng) ~config:Churn.default_config ~hosts:node_count
          ~duration
      in
      Printf.printf "churn enabled: mean %.0f%% of hosts online\n%!"
        (100. *. Churn.mean_online_fraction timeline ~duration ~samples:32);
      fun ~time host -> Churn.is_online timeline ~host ~time
    end
  in
  let protocol =
    Protocol.create ~world ~engine ~link_state ~rng:(Prng.split rng) ~availability ~obs
      Protocol.default_config ~behavior
  in
  Protocol.start_probing protocol ~horizon:duration;
  (* One routing-state exchange up front: peers validate each other's
     advertised state before trusting its tomography (Section 3.1). In an
     all-honest world the flags below are the density tests' natural false
     positives (Figure 2(a) analysed analytically). *)
  let advertisement_reports = Protocol.exchange_advertisements protocol in
  let validations =
    Array.fold_left (fun acc peers -> acc + Array.length peers) 0 world.World.peers
  in
  Printf.printf
    "routing-state validation: %d/%d advertisements flagged (%.1f%%; density-test false \
     positives in an honest world)\n%!"
    (List.length advertisement_reports)
    validations
    (100. *. float_of_int (List.length advertisement_reports) /. float_of_int (max 1 validations));
  let stats =
    { sent = 0; delivered = 0; correct_node = 0; correct_network = 0; wrong = 0; undiagnosed = 0 }
  in
  let message_rng = Prng.split rng in
  (* Spread messages across the run, after probing has warmed up. *)
  for i = 0 to messages - 1 do
    let at = 300. +. (duration -. 600.) *. float_of_int i /. float_of_int (max 1 messages) in
    Engine.schedule_at engine ~time:at (fun _ ->
        let from = Prng.int message_rng node_count in
        let dest = Id.random message_rng in
        stats.sent <- stats.sent + 1;
        Protocol.send_message protocol ~from ~dest ~payload:"payload" ~on_outcome:(fun outcome ->
            if outcome.Protocol.delivered then stats.delivered <- stats.delivered + 1
            else begin
              let truth = outcome.Protocol.drop in
              match outcome.Protocol.diagnosis with
              | None
              | Some (Protocol.Diagnosed { Stewardship.final = None; _ })
              | Some (Protocol.Insufficient_evidence _) ->
                  stats.undiagnosed <- stats.undiagnosed + 1
              | Some (Protocol.Diagnosed { Stewardship.final = Some target; _ }) -> (
                  let correct =
                    match (target, truth) with
                    | Stewardship.Next_hop v, Some (Protocol.Dropped_by_overlay d) -> v = d
                    | Stewardship.Network, Some (Protocol.Dropped_on_ip_link _)
                    | Stewardship.Network, Some (Protocol.Ack_lost_on_link _) ->
                        true
                    | ( (Stewardship.Next_hop v | Stewardship.Offline v),
                        Some (Protocol.Hop_offline d) ) ->
                        (* Identifying the unreachable hop is the right
                           answer, whether or not absence is treated as a
                           fault. *)
                        v = d
                    | _ -> false
                  in
                  if correct then begin
                    match target with
                    | Stewardship.Next_hop _ | Stewardship.Offline _ ->
                        stats.correct_node <- stats.correct_node + 1
                    | Stewardship.Network -> stats.correct_network <- stats.correct_network + 1
                  end
                  else stats.wrong <- stats.wrong + 1;
                  if verbose then
                    Printf.printf "  t=%7.1f drop %s -> blamed %s (%s)\n"
                      (Engine.now engine)
                      (match truth with
                      | Some (Protocol.Dropped_by_overlay d) -> Printf.sprintf "by node %d" d
                      | Some (Protocol.Dropped_on_ip_link l) -> Printf.sprintf "on link %d" l
                      | Some (Protocol.Ack_lost_on_link l) -> Printf.sprintf "ack on link %d" l
                      | Some (Protocol.Hop_offline v) -> Printf.sprintf "node %d offline" v
                      | None -> "?")
                      (describe_target world target)
                      (if correct then "correct" else "WRONG"))
            end))
  done;
  Engine.run_until engine duration;
  Printf.printf
    "\nmessages: %d sent, %d delivered, %d dropped\ndiagnoses: %d correct (node), %d correct \
     (network), %d wrong, %d undiagnosed\n"
    stats.sent stats.delivered
    (stats.sent - stats.delivered)
    stats.correct_node stats.correct_network stats.wrong stats.undiagnosed;
  let diagnosed = stats.correct_node + stats.correct_network + stats.wrong in
  if diagnosed > 0 then
    Printf.printf "diagnosis accuracy: %.1f%%\n"
      (100. *. float_of_int (stats.correct_node + stats.correct_network) /. float_of_int diagnosed);
  Printf.printf
    "control-plane bandwidth: %.0f B/s per node (probes + snapshot diffs + heavyweight bursts)\n"
    (Protocol.mean_control_bytes_per_second protocol ~horizon:duration);
  if observing then begin
    let merged = Collector.merge shards in
    let filter = Export.filter_of_spec trace_filter in
    (match Trace.validate merged.Collector.trace with
    | Ok () -> ()
    | Error reason -> Printf.eprintf "trace validation failed: %s\n%!" reason);
    Option.iter
      (fun path ->
        Export.write_trace ~path ?filter merged.Collector.trace;
        Printf.printf "trace: %d records -> %s\n" (Trace.length merged.Collector.trace) path)
      trace_out;
    Option.iter
      (fun path ->
        Export.write_metrics ~path ~time:duration merged.Collector.metrics;
        Printf.printf "metrics -> %s\n" path)
      metrics_out
  end

open Cmdliner

let seed =
  Arg.(value & opt int64 7L & info [ "seed" ] ~doc:"Deterministic seed.")

let duration =
  Arg.(value & opt float 7200. & info [ "duration" ] ~doc:"Virtual seconds to simulate.")

let messages =
  Arg.(value & opt int 400 & info [ "messages" ] ~doc:"Messages to route during the run.")

let dropper_fraction =
  Arg.(
    value & opt float 0.1 & info [ "droppers" ] ~doc:"Fraction of nodes that drop messages.")

let drop_probability =
  Arg.(
    value & opt float 0.8
    & info [ "drop-probability" ] ~doc:"Per-message drop probability of a faulty node.")

let churn =
  Arg.(value & flag & info [ "churn" ] ~doc:"Model host availability churn (2h up / 10min down).")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every diagnosis.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the diagnosis trace to $(docv): Chrome trace_event JSON when the name ends \
           in .json (load in chrome://tracing), JSONL otherwise.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the metrics snapshot (counters, gauges, histograms) as JSON to $(docv).")

let trace_filter =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-filter" ] ~docv:"CATS"
        ~doc:
          "Keep only trace records in these comma-separated categories (e.g. \
           episode,probe,dht).")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Pre-allocate $(docv) per-shard observability collectors and merge them in shard \
           order; trace and metrics output is byte-identical for any value.")

let cmd =
  let doc = "Run the full Concilium protocol over a simulated deployment" in
  Cmd.v
    (Cmd.info "concilium-sim" ~doc)
    Term.(
      const run $ seed $ duration $ messages $ dropper_fraction $ drop_probability $ churn
      $ verbose $ trace_out $ metrics_out $ trace_filter $ domains)

let () = exit (Cmd.eval cmd)
