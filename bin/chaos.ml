(* Seeded chaos soak runner: execute a matrix of fault and adversary
   scenarios over the full protocol runtime and check machine-readable
   invariants --

     - no scenario raises an uncaught exception;
     - every message produces an outcome before the engine drains;
     - every undelivered message ends in a stewardship resolution or an
       explicit Insufficient_evidence degradation;
     - honest nodes incur zero formal accusations;
     - detection scenarios additionally assert their adversary both acted
       and was caught (see Concilium_adversary.Soak_invariants).

   The transcript (stdout) is deterministic JSON: scenario plans (faults
   and adversary campaigns alike) are sampled from pre-split PRNGs before
   any parallel fan-out, so the bytes are identical for any --domains
   value. CI diffs --domains 1 vs 2, and additionally re-runs detection
   scenarios with one defense disabled (--disable-defense NAME
   --expect-failure): a canary run that passes anyway fails the job. *)

module World = Concilium_core.World
module Protocol = Concilium_core.Protocol
module Stewardship = Concilium_core.Stewardship
module Dht = Concilium_core.Dht
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Chaos = Concilium_netsim.Chaos
module Churn = Concilium_netsim.Churn
module Graph = Concilium_topology.Graph
module Routes = Concilium_topology.Routes
module Id = Concilium_overlay.Id
module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool
module Collector = Concilium_obs.Collector
module Trace = Concilium_obs.Trace
module Export = Concilium_obs.Export
module Flight = Concilium_obs.Flight
module Timeseries = Concilium_obs.Timeseries
module Prov_graph = Concilium_provenance.Graph
module Validation = Concilium_core.Validation
module Strategy = Concilium_adversary.Strategy
module Soak = Concilium_adversary.Soak_invariants

type adversary_spec =
  | No_adversary
  | Sampled of Chaos.adversary_config
      (* background pressure: campaigns drawn uniformly; no detection
         assertion since a sampled coalition may never touch a route *)
  | Targeted_collusion of { size : int; drop_probability : float; corroboration : float }
  | Targeted_lying of { size : int; corroboration : float }
  | Targeted_eclipse of { size : int }
  | Targeted_biased of { size : int; keep_fraction : float }

type scenario = {
  name : string;
  chaos : Chaos.config;
  dropper_fraction : float;
  drop_probability : float;
  churn : bool;
  messages : int;
  duration : float;
  adversary : adversary_spec;
  require_detection : bool;
}

let base ~name ~chaos =
  {
    name;
    chaos;
    dropper_fraction = 0.;
    drop_probability = 0.;
    churn = false;
    messages = 30;
    duration = 3600.;
    adversary = No_adversary;
    require_detection = false;
  }

let small_matrix =
  [
    base ~name:"quiet" ~chaos:Chaos.quiet;
    base ~name:"flaps"
      ~chaos:
        {
          Chaos.quiet with
          Chaos.link_flaps_per_hour = 8.;
          flap_mean_duration = 150.;
          bursts_per_hour = 2.;
          burst_width = 3;
          burst_mean_duration = 180.;
        };
    base ~name:"partition"
      ~chaos:
        {
          Chaos.quiet with
          Chaos.partitions_per_hour = 1.5;
          partition_mean_duration = 240.;
          link_flaps_per_hour = 4.;
          flap_mean_duration = 120.;
        };
    base ~name:"crashes"
      ~chaos:
        {
          Chaos.quiet with
          Chaos.crashes_per_hour = 4.;
          crash_mean_duration = 240.;
          replica_losses_per_hour = 2.;
        };
    base ~name:"control-plane"
      ~chaos:
        {
          Chaos.quiet with
          Chaos.delays_per_hour = 3.;
          delay_mean_duration = 400.;
          delay_extra = 8.;
          duplications_per_hour = 3.;
          duplication_mean_duration = 400.;
          duplication_copies = 3;
        };
    {
      (base ~name:"mixed" ~chaos:Chaos.default_config) with
      dropper_fraction = 0.1;
      drop_probability = 0.8;
      churn = true;
    };
  ]

(* Detection scenarios: each aims a compiled strategy at a concrete route
   and asserts the runtime's defenses catch (or withstand) it. The three
   single-knob canaries in CI re-run these with --disable-defense:
     collusion      <-> suspect-exclusion (Section 3.4 self-exculpation)
     collusion      <-> vote-dedup (forged-ballot stuffing)
     biased-join    <-> density-validation (Section 3.1 occupancy test)
   lying-reporter asserts framing never sticks with defenses on. *)
let adversarial_matrix =
  [
    {
      (base ~name:"collusion" ~chaos:Chaos.quiet) with
      adversary =
        Targeted_collusion { size = 3; drop_probability = 1.0; corroboration = 1.0 };
      require_detection = true;
      messages = 40;
    };
    {
      (base ~name:"lying-reporter" ~chaos:Chaos.quiet) with
      adversary = Targeted_lying { size = 3; corroboration = 1.0 };
      require_detection = true;
      messages = 40;
    };
    {
      (base ~name:"eclipse" ~chaos:Chaos.quiet) with
      adversary = Targeted_eclipse { size = 3 };
      require_detection = true;
      messages = 40;
    };
    {
      (base ~name:"biased-join" ~chaos:Chaos.quiet) with
      adversary = Targeted_biased { size = 3; keep_fraction = 0.4 };
      require_detection = true;
    };
    {
      (base ~name:"adversary-pressure"
         ~chaos:
           { Chaos.quiet with Chaos.link_flaps_per_hour = 4.; flap_mean_duration = 120. })
      with
      adversary = Sampled Chaos.default_adversary_config;
    };
  ]

let full_matrix =
  small_matrix
  @ [
      { (base ~name:"paper-intensity" ~chaos:Chaos.paper_rates) with messages = 60 };
      {
        (base ~name:"everything" ~chaos:Chaos.paper_rates) with
        dropper_fraction = 0.15;
        drop_probability = 0.9;
        churn = true;
        messages = 60;
        duration = 5400.;
      };
    ]
  @ adversarial_matrix

(* ---------- Defense toggles ---------- *)

type defense = Suspect_exclusion | Vote_dedup | Density_validation

let defense_name = function
  | Suspect_exclusion -> "suspect-exclusion"
  | Vote_dedup -> "vote-dedup"
  | Density_validation -> "density-validation"

let apply_disabled config = function
  | None -> config
  | Some Suspect_exclusion -> { config with Protocol.exclude_suspect_probes = false }
  | Some Vote_dedup -> { config with Protocol.one_vote_per_prober = false }
  | Some Density_validation -> { config with Protocol.validation_gamma_jump = infinity }

(* ---------- One scenario run ---------- *)

type tally = {
  mutable delivered : int;
  mutable retransmitted : int;  (* delivered or not, needed > 1 attempt *)
  mutable diagnosed_node : int;
  mutable diagnosed_network : int;
  mutable diagnosed_offline : int;
  mutable diagnosed_none : int;  (* resolution with no final target *)
  mutable degraded : int;  (* explicit Insufficient_evidence *)
  mutable unresolved : int;  (* undelivered without any diagnosis: violation *)
  mutable missing : int;  (* no outcome at all: violation *)
  mutable flagged_no_commitment : int;
}

type adversary_tally = {
  mutable forced_drops : int;
  mutable lies : int;
  mutable route_rewrites : int;
  mutable advert_rewrites : int;
  mutable forged_reports : int;
  mutable adversary_blamed : int;  (* episodes settling on a compromised node *)
  mutable victim_blamed : int;  (* episodes settling on a framing/eclipse victim *)
  mutable compromised_accusations : int;  (* durable accusations naming colluders *)
  mutable advert_flagged : int;  (* failed validations naming a biased sampler *)
}

type run_result = {
  scenario : scenario;
  faults : (string * int) list;
  adversaries : (string * int) list;
  tally : tally;
  adv : adversary_tally;
  adversary_present : bool;
  adversary_detected : bool;
  honest_accusations : int;
  dht_failover_times : float list;
      (* engine times at which a DHT put succeeded by failing over past a
         dead root replica, from the scenario's trace *)
  failure : string option;  (* uncaught exception, if any *)
}

(* A cut that separates the low-index half of the overlay from the
   high-index half: links used by some cross-side peer path but by no
   same-side one. *)
let build_cuts world =
  let n = World.node_count world in
  let side v = v < n / 2 in
  let paths = ref [] in
  Array.iteri
    (fun v peers ->
      Array.iteri
        (fun i peer ->
          match world.World.peer_paths.(v).(i) with
          | Some path -> paths := (side v, side peer, path.Routes.links) :: !paths
          | None -> ())
        peers)
    world.World.peers;
  let cut = Chaos.cut_of_paths ~paths:(List.rev !paths) in
  if Array.length cut = 0 then [||] else [| cut |]

let mask_of_nodes node_count nodes =
  let mask = Array.make node_count false in
  Array.iter (fun v -> if v >= 0 && v < node_count then mask.(v) <- true) nodes;
  mask

(* Counting wrappers around the compiled strategy's taps: the per-scenario
   action counters feed both the transcript and the adversary-inert
   invariant, without reaching into the shared metrics registry. *)
let counting_taps base adv =
  {
    Protocol.tap_route =
      (fun ~time ~from ~dest route ->
        match base.Protocol.tap_route ~time ~from ~dest route with
        | Some _ as rewritten ->
            adv.route_rewrites <- adv.route_rewrites + 1;
            rewritten
        | None -> None);
    tap_forward =
      (fun ~time ~node ~sender ~next ->
        match base.Protocol.tap_forward ~time ~node ~sender ~next with
        | Some Protocol.Tap_drop as forced ->
            adv.forced_drops <- adv.forced_drops + 1;
            forced
        | other -> other);
    tap_observation =
      (fun ~time ~prober ~link ~up ->
        let reported = base.Protocol.tap_observation ~time ~prober ~link ~up in
        if reported <> up then adv.lies <- adv.lies + 1;
        reported);
    tap_advertised_peers =
      (fun ~time ~node peers ->
        match base.Protocol.tap_advertised_peers ~time ~node peers with
        | Some _ as rewritten ->
            adv.advert_rewrites <- adv.advert_rewrites + 1;
            rewritten
        | None -> None);
    tap_forged_reports =
      (fun ~time ~prober ->
        let forged = base.Protocol.tap_forged_reports ~time ~prober in
        adv.forged_reports <- adv.forged_reports + List.length forged;
        forged);
  }

let run_scenario ~seed ~index ~rng ~obs ~timeseries ~disable scenario =
  let tally =
    {
      delivered = 0;
      retransmitted = 0;
      diagnosed_node = 0;
      diagnosed_network = 0;
      diagnosed_offline = 0;
      diagnosed_none = 0;
      degraded = 0;
      unresolved = 0;
      missing = 0;
      flagged_no_commitment = 0;
    }
  in
  let adv =
    {
      forced_drops = 0;
      lies = 0;
      route_rewrites = 0;
      advert_rewrites = 0;
      forged_reports = 0;
      adversary_blamed = 0;
      victim_blamed = 0;
      compromised_accusations = 0;
      advert_flagged = 0;
    }
  in
  try
    let world_seed = Int64.add seed (Int64.of_int (1009 * (index + 1))) in
    let world = World.build (World.tiny_config ~seed:world_seed) in
    let graph = world.World.generated.World.Generate.graph in
    let node_count = World.node_count world in
    let link_count = Graph.link_count graph in
    let engine = Engine.create () in
    let link_state =
      Link_state.create ~link_count ~good_loss:0.001 ~bad_loss:1.
    in
    let plan =
      Chaos.sample ~rng:(Prng.split rng) ~config:scenario.chaos
        ~links:(Array.init link_count Fun.id) ~nodes:node_count ~cuts:(build_cuts world)
        ~horizon:scenario.duration
    in
    (* Adversary campaigns: either sampled like faults, or aimed at a
       concrete route so detection is deterministic. Campaign windows
       cover the whole run including the judgment flush. *)
    let adv_rng = Prng.split rng in
    let strategy_rng = Prng.split rng in
    let campaign = scenario.duration +. 900. in
    let adversary_plan, framed_links, targeted, sampler_keep =
      match scenario.adversary with
      | No_adversary -> ([], [||], None, None)
      | Sampled config ->
          ( Chaos.sample_adversaries ~rng:adv_rng ~config ~nodes:node_count
              ~peers_of:(fun v -> world.World.peers.(v))
              ~horizon:scenario.duration (),
            [||],
            None,
            None )
      | Targeted_collusion { size; drop_probability; corroboration } -> (
          (* Prefer a route that serves both collusion canaries: a
             self-exculpation gap (a dropper egress link only the dropper
             can vouch for to the judge) flips the suspect-exclusion
             canary, and enough covering helpers make forged-ballot
             stuffing decisive for the vote-dedup canary. *)
          let rec pick trials best best_score =
            if trials = 0 then best
            else begin
              match Strategy.targeted_route ~world ~rng:adv_rng ~min_hops:3 with
              | None -> best
              | Some (from, dest, route) ->
                  let gap = Strategy.self_exculpation_gap ~world ~route in
                  let coverage = Strategy.coalition_coverage ~world ~route in
                  let score =
                    (if gap then 100 else 0) + min coverage (2 * (size - 1))
                  in
                  if gap && coverage >= size - 1 then Some (from, dest, route)
                  else if score > best_score then
                    pick (trials - 1) (Some (from, dest, route)) score
                  else pick (trials - 1) best best_score
            end
          in
          match pick 48 None (-1) with
          | None -> ([], [||], None, None)
          | Some (from, dest, route) -> (
              match
                Strategy.collusion_against_route ~world ~route ~size ~drop_probability
                  ~corroboration ~start:0. ~duration:campaign
              with
              | None -> ([], [||], None, None)
              | Some adversary -> ([ adversary ], [||], Some (from, dest), None)))
      | Targeted_lying { size; corroboration } -> (
          match Strategy.targeted_route ~world ~rng:adv_rng ~min_hops:3 with
          | None -> ([], [||], None, None)
          | Some (from, dest, route) -> (
              match
                Strategy.lying_against_route ~world ~route ~size ~corroboration ~start:0.
                  ~duration:campaign
              with
              | None -> ([], [||], None, None)
              | Some (adversary, egress) -> ([ adversary ], egress, Some (from, dest), None)))
      | Targeted_eclipse { size } -> (
          match Strategy.targeted_route ~world ~rng:adv_rng ~min_hops:3 with
          | None -> ([], [||], None, None)
          | Some (from, dest, route) -> (
              match
                Strategy.eclipse_against_route ~world ~route ~size ~start:0.
                  ~duration:campaign
              with
              | None -> ([], [||], None, None)
              | Some adversary -> ([ adversary ], [||], Some (from, dest), None)))
      | Targeted_biased { size; keep_fraction } ->
          let favored = Prng.int adv_rng node_count in
          let picks =
            Prng.sample_without_replacement adv_rng
              (min size (node_count - 1))
              (node_count - 1)
          in
          let samplers = Array.map (fun v -> if v >= favored then v + 1 else v) picks in
          ( [ Chaos.Biased_sampling { samplers; favored; start = 0.; duration = campaign } ],
            [||],
            None,
            Some keep_fraction )
    in
    (* The framing scenario faults the victim's egress for the whole run:
       the network genuinely drops on the victim's watch, and the liars
       work to pin those drops on the victim itself. *)
    let plan =
      if Array.length framed_links = 0 then plan
      else
        plan
        @ [ Chaos.Burst_loss { links = framed_links; start = 60.; duration = scenario.duration } ]
    in
    let strategy = Strategy.compile ~world ~rng:strategy_rng ~forge_copies:6 adversary_plan in
    let taps = counting_taps (Strategy.taps strategy) adv in
    let compromised_mask = mask_of_nodes node_count (Strategy.compromised strategy) in
    let victim_mask = mask_of_nodes node_count (Strategy.victims strategy) in
    let sampler_mask = mask_of_nodes node_count (Strategy.biased_samplers strategy) in
    (* The Dht exists only after Protocol.create; Replica_loss events fire
       later, during the engine run, so a forward reference suffices. *)
    let dht_ref = ref None in
    let chaos =
      Chaos.compile ~obs:obs.Collector.trace
        ~on_replica_loss:(fun ~node ~time:_ ->
          match !dht_ref with Some dht -> Dht.drop_replica dht ~node | None -> ())
        ~engine ~link_state plan
    in
    let churn_timeline =
      if scenario.churn then
        Some
          (Churn.generate ~rng:(Prng.split rng) ~config:Churn.default_config
             ~hosts:node_count ~duration:scenario.duration)
      else None
    in
    let availability ~time v =
      (match churn_timeline with
      | Some timeline -> Churn.is_online timeline ~host:v ~time
      | None -> true)
      && Chaos.node_online chaos ~time v
    in
    let dropper_count =
      int_of_float (Float.round (scenario.dropper_fraction *. float_of_int node_count))
    in
    let dropper_picks = Prng.sample_without_replacement rng dropper_count node_count in
    let is_dropper = Array.make node_count false in
    Array.iter (fun v -> is_dropper.(v) <- true) dropper_picks;
    let behavior v =
      if sampler_mask.(v) then
        Protocol.Sparse_advertiser (match sampler_keep with Some k -> k | None -> 0.4)
      else if is_dropper.(v) then Protocol.Message_dropper scenario.drop_probability
      else Protocol.Honest
    in
    let config = apply_disabled Protocol.default_config disable in
    let protocol =
      Protocol.create ~world ~engine ~link_state ~rng:(Prng.split rng) ~availability
        ~control_latency:(fun ~time -> Chaos.control_latency chaos ~time)
        ~put_copies:(fun ~time -> Chaos.put_copies chaos ~time)
        ~obs ~taps config ~behavior
    in
    dht_ref := Some (Protocol.dht protocol);
    Protocol.start_probing protocol ~horizon:scenario.duration;
    (* The biased-join detection vector is the Section 3.1 routing-state
       exchange: schedule one mid-run, while the campaign is live. *)
    let advert_reports = ref [] in
    (match scenario.adversary with
    | Targeted_biased _ ->
        Engine.schedule_at engine ~time:(0.5 *. scenario.duration) (fun _ ->
            advert_reports := Protocol.exchange_advertisements protocol @ !advert_reports)
    | _ -> ());
    let outcomes = Array.make scenario.messages None in
    let message_rng = Prng.split rng in
    let warm = 0.1 *. scenario.duration in
    let span = scenario.duration -. 500. -. warm in
    for i = 0 to scenario.messages - 1 do
      let at = warm +. (span *. float_of_int i /. float_of_int (max 1 scenario.messages)) in
      Engine.schedule_at engine ~time:at (fun _ ->
          let from, dest =
            match targeted with
            | Some (from, dest) -> (from, dest)
            | None -> (Prng.int message_rng node_count, Id.random message_rng)
          in
          Protocol.send_message protocol ~from ~dest ~payload:"soak"
            ~on_outcome:(fun outcome -> outcomes.(i) <- Some outcome))
    done;
    (* Metrics time series: sample the live registry at every epoch
       boundary in virtual time. The sampler only deep-copies the metrics
       -- it never touches simulation state -- so arming it cannot perturb
       the run or its byte-stable transcript. *)
    let horizon = scenario.duration +. 900. in
    Option.iter
      (fun series ->
        let cadence = Timeseries.cadence series in
        let epochs = int_of_float (Float.floor (horizon /. cadence)) in
        for k = 1 to epochs do
          Engine.schedule_at engine ~time:(float_of_int k *. cadence) (fun e ->
              Timeseries.sample series ~time:(Engine.now e) obs.Collector.metrics)
        done)
      timeseries;
    (* Run past the horizon so the last judgments (drop + Delta + injected
       control latency, after retransmits) flush. *)
    Engine.run_until engine horizon;
    Array.iter
      (fun outcome ->
        match outcome with
        | None -> tally.missing <- tally.missing + 1
        | Some o ->
            if o.Protocol.attempts > 1 then tally.retransmitted <- tally.retransmitted + 1;
            if o.Protocol.no_commitment_from <> None then
              tally.flagged_no_commitment <- tally.flagged_no_commitment + 1;
            if o.Protocol.delivered then tally.delivered <- tally.delivered + 1
            else begin
              match o.Protocol.diagnosis with
              | None -> tally.unresolved <- tally.unresolved + 1
              | Some (Protocol.Insufficient_evidence _) -> tally.degraded <- tally.degraded + 1
              | Some (Protocol.Diagnosed resolution) -> (
                  match resolution.Stewardship.final with
                  | Some (Stewardship.Next_hop v) ->
                      tally.diagnosed_node <- tally.diagnosed_node + 1;
                      if v >= 0 && v < node_count && compromised_mask.(v) then
                        adv.adversary_blamed <- adv.adversary_blamed + 1;
                      if v >= 0 && v < node_count && victim_mask.(v) then
                        adv.victim_blamed <- adv.victim_blamed + 1
                  | Some Stewardship.Network ->
                      tally.diagnosed_network <- tally.diagnosed_network + 1
                  | Some (Stewardship.Offline _) ->
                      tally.diagnosed_offline <- tally.diagnosed_offline + 1
                  | None -> tally.diagnosed_none <- tally.diagnosed_none + 1)
            end)
      outcomes;
    List.iter
      (fun report ->
        (* Only the Section 3.1 density (jump-table occupancy) test counts:
           that is the check --disable-defense density-validation turns
           off, so its canary must go dark without it. *)
        if
          report.Protocol.advertiser >= 0
          && report.Protocol.advertiser < node_count
          && sampler_mask.(report.Protocol.advertiser)
          && List.exists
               (fun failure ->
                 match failure with
                 | Validation.Sparse_jump_table _ -> true
                 | _ -> false)
               report.Protocol.failures
        then adv.advert_flagged <- adv.advert_flagged + 1)
      !advert_reports;
    (* Formal accusations: read every replica (ignoring availability -- the
       records are durable). Accusations naming honest nodes are an
       invariant violation; accusations naming compromised nodes are the
       collusion/eclipse detection signal. Framing and eclipse victims are
       honest nodes. *)
    let honest_accusations = ref 0 in
    let dht = Protocol.dht protocol in
    for v = 0 to node_count - 1 do
      if not (is_dropper.(v) || compromised_mask.(v)) then begin
        let hops = ref 0 in
        let named =
          Dht.get dht ~from:0 ~accused_key:(World.public_key_of world v) ~hops ()
        in
        honest_accusations :=
          !honest_accusations + List.length named.Dht.accusations
      end
      else if compromised_mask.(v) then begin
        let hops = ref 0 in
        let named =
          Dht.get dht ~from:0 ~accused_key:(World.public_key_of world v) ~hops ()
        in
        adv.compromised_accusations <-
          adv.compromised_accusations + List.length named.Dht.accusations
      end
    done;
    let adversary_detected =
      match scenario.adversary with
      | No_adversary -> false
      | Sampled _ -> true (* background pressure: no detection criterion *)
      | Targeted_collusion _ ->
          (* Episode-level blame alone is too weak a bar: one stray episode
             pinned on a colluder while the rest are shielded would still
             "detect". Require the durable enforcement artifact — a formal
             accusation filed against a coalition member. *)
          adv.compromised_accusations > 0
      | Targeted_eclipse _ -> adv.adversary_blamed > 0 || adv.compromised_accusations > 0
      | Targeted_lying _ ->
          (* The defense "detects" the campaign by withstanding it: framed
             episodes existed and none settled on the victim. *)
          tally.diagnosed_network > 0 && adv.victim_blamed = 0
      | Targeted_biased _ -> adv.advert_flagged > 0
    in
    {
      scenario;
      faults = Chaos.fault_counts plan;
      adversaries = Chaos.adversary_counts adversary_plan;
      tally;
      adv;
      adversary_present = adversary_plan <> [];
      adversary_detected;
      honest_accusations = !honest_accusations;
      dht_failover_times =
        List.map fst (Trace.instants obs.Collector.trace ~name:"dht.put.failover");
      failure = None;
    }
  with e ->
    {
      scenario;
      faults = [];
      adversaries = [];
      tally;
      adv;
      adversary_present = false;
      adversary_detected = false;
      honest_accusations = 0;
      dht_failover_times = [];
      failure = Some (Printexc.to_string e);
    }

(* ---------- Transcript ---------- *)

let adversary_fired adv =
  adv.forced_drops > 0 || adv.lies > 0 || adv.route_rewrites > 0 || adv.advert_rewrites > 0
  || adv.forged_reports > 0

let invariant_inputs r =
  {
    Soak.failure = r.failure;
    missing_outcomes = r.tally.missing;
    unresolved = r.tally.unresolved;
    honest_accusations = r.honest_accusations;
    adversary_present = r.adversary_present;
    adversary_fired = adversary_fired r.adv;
    adversary_detected = r.adversary_detected;
    require_detection = r.scenario.require_detection;
  }

let scenario_passed r = Soak.pass (invariant_inputs r)

let emit_json buf ~matrix ~seed ~disable ~expect_failure results =
  let add fmt = Printf.bprintf buf fmt in
  add "{\n  \"matrix\": %S,\n  \"seed\": %Ld,\n" matrix seed;
  (match disable with
  | None -> add "  \"disabled_defense\": null,\n"
  | Some d -> add "  \"disabled_defense\": %S,\n" (defense_name d));
  add "  \"expect_failure\": %b,\n  \"scenarios\": [\n" expect_failure;
  List.iteri
    (fun i r ->
      let t = r.tally in
      add "    {\n      \"name\": %S,\n" r.scenario.name;
      add "      \"faults\": {";
      List.iteri
        (fun j (family, count) ->
          add "%s\"%s\": %d" (if j = 0 then "" else ", ") family count)
        r.faults;
      add "},\n";
      add "      \"adversaries\": {";
      List.iteri
        (fun j (family, count) ->
          add "%s\"%s\": %d" (if j = 0 then "" else ", ") family count)
        r.adversaries;
      add "},\n";
      add "      \"sent\": %d,\n" r.scenario.messages;
      add "      \"delivered\": %d,\n" t.delivered;
      add "      \"retransmitted\": %d,\n" t.retransmitted;
      add "      \"diagnosed_node\": %d,\n" t.diagnosed_node;
      add "      \"diagnosed_network\": %d,\n" t.diagnosed_network;
      add "      \"diagnosed_offline\": %d,\n" t.diagnosed_offline;
      add "      \"diagnosed_no_target\": %d,\n" t.diagnosed_none;
      add "      \"degraded_insufficient_evidence\": %d,\n" t.degraded;
      add "      \"flagged_no_commitment\": %d,\n" t.flagged_no_commitment;
      add "      \"unresolved\": %d,\n" t.unresolved;
      add "      \"missing_outcomes\": %d,\n" t.missing;
      add "      \"honest_accusations\": %d,\n" r.honest_accusations;
      add "      \"adversary\": {";
      add "\"forced_drops\": %d, " r.adv.forced_drops;
      add "\"lies\": %d, " r.adv.lies;
      add "\"route_rewrites\": %d, " r.adv.route_rewrites;
      add "\"advert_rewrites\": %d, " r.adv.advert_rewrites;
      add "\"forged_reports\": %d, " r.adv.forged_reports;
      add "\"adversary_blamed\": %d, " r.adv.adversary_blamed;
      add "\"victim_blamed\": %d, " r.adv.victim_blamed;
      add "\"compromised_accusations\": %d, " r.adv.compromised_accusations;
      add "\"advert_flagged\": %d, " r.adv.advert_flagged;
      add "\"fired\": %b, " (adversary_fired r.adv);
      add "\"detected\": %b},\n" r.adversary_detected;
      add "      \"dht_failover_times\": [";
      List.iteri
        (fun j time -> add "%s%.6f" (if j = 0 then "" else ", ") time)
        r.dht_failover_times;
      add "],\n";
      (match r.failure with
      | None -> add "      \"exception\": null,\n"
      | Some msg -> add "      \"exception\": %S,\n" msg);
      add "      \"invariant_failures\": [";
      List.iteri
        (fun j label -> add "%s%S" (if j = 0 then "" else ", ") label)
        (Soak.failures (invariant_inputs r));
      add "],\n";
      add "      \"pass\": %b\n" (scenario_passed r);
      add "    }%s\n" (if i = List.length results - 1 then "" else ","))
    results;
  add "  ],\n  \"pass\": %b\n}\n" (List.for_all scenario_passed results)

let run matrix seed domains trace_out metrics_out trace_filter provenance_out flight_out
    timeseries_out cadence disable expect_failure =
  let scenarios =
    match matrix with
    | "small" -> small_matrix
    | "adversarial" -> adversarial_matrix
    | "full" -> full_matrix
    | other ->
        Printf.eprintf "unknown matrix %S (expected small, adversarial or full)\n" other;
        exit 2
  in
  (* Pre-split every scenario's PRNG — and pre-allocate its observability
     collector — before the fan-out: the transcript and any exported
     trace/metrics are byte-identical for any --domains value. Collectors
     always record here because the transcript's dht_failover_times field
     reads the trace. *)
  let master = Prng.of_seed seed in
  let count = List.length scenarios in
  let rngs = Prng.split_n master count in
  let collectors = Collector.shards count in
  (* Flight recorders and time series are per-scenario shards, allocated
     and attached before the fan-out like every other sink: each worker
     only ever touches its own scenario's ring and series. *)
  let flights =
    if flight_out = None then [||]
    else
      Array.init count (fun i ->
          let flight = Flight.create () in
          Flight.attach flight collectors.(i);
          flight)
  in
  let series =
    if timeseries_out = None then [||]
    else begin
      if cadence <= 0. then begin
        Printf.eprintf "--cadence must be positive\n";
        exit 2
      end;
      Array.init count (fun _ -> Timeseries.create ~cadence)
    end
  in
  let indexed = Array.of_list (List.mapi (fun i s -> (i, s)) scenarios) in
  let results =
    Pool.with_pool ?domains (fun pool ->
        Pool.parallel_map ~pool indexed ~f:(fun (i, s) ->
            run_scenario ~seed ~index:i ~rng:rngs.(i) ~obs:collectors.(i)
              ~timeseries:(if series = [||] then None else Some series.(i))
              ~disable s))
  in
  let results = Array.to_list results in
  if trace_out <> None || metrics_out <> None || provenance_out <> None then begin
    let merged = Collector.merge collectors in
    let filter = Export.filter_of_spec trace_filter in
    Option.iter
      (fun path -> Export.write_trace ~path ?filter merged.Collector.trace)
      trace_out;
    Option.iter (fun path -> Export.write_metrics ~path merged.Collector.metrics) metrics_out;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Prov_graph.jsonl merged.Collector.prov);
        close_out oc)
      provenance_out
  end;
  Option.iter
    (fun path ->
      let merged = Timeseries.merge series in
      let oc = open_out path in
      output_string oc (Timeseries.jsonl merged);
      close_out oc)
    timeseries_out;
  (* Flight dumps only materialize on failure: each failed scenario's ring
     (its last trace records and provenance deltas) is appended to the
     artifact, so a red soak ships with its trailing context. *)
  Option.iter
    (fun path ->
      if List.exists (fun r -> not (scenario_passed r)) results then begin
        let oc = open_out path in
        List.iteri
          (fun i r ->
            if not (scenario_passed r) then begin
              let reason =
                Printf.sprintf "%s: %s" r.scenario.name
                  (String.concat ", " (Soak.failures (invariant_inputs r)))
              in
              output_string oc (Flight.dump ~reason flights.(i))
            end)
          results;
        close_out oc
      end)
    flight_out;
  let buf = Buffer.create 4096 in
  emit_json buf ~matrix ~seed ~disable ~expect_failure results;
  print_string (Buffer.contents buf);
  List.iter
    (fun r ->
      Printf.eprintf "scenario %-18s %s\n" r.scenario.name
        (if scenario_passed r then "ok"
         else
           Printf.sprintf "FAILED (%s)"
             (String.concat ", " (Soak.failures (invariant_inputs r)))))
    results;
  let pass_all = List.for_all scenario_passed results in
  if expect_failure then
    if pass_all then begin
      Printf.eprintf
        "expected at least one scenario to fail (canary for disabled defense), but all passed\n";
      1
    end
    else 0
  else Soak.exit_code ~pass_all

open Cmdliner

let matrix =
  Arg.(
    value & opt string "small"
    & info [ "matrix" ] ~docv:"MATRIX"
        ~doc:"Scenario matrix: small (CI), adversarial (detection scenarios), or full.")

let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Deterministic seed.")

let domains =
  let doc =
    "Domains for the scenario fan-out (default: recommended count; 1 = sequential). The \
     transcript is byte-identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the merged per-scenario trace (protocol spans + chaos fault events) to \
           $(docv): Chrome trace_event JSON for .json names, JSONL otherwise.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the merged metrics snapshot as JSON to $(docv).")

let trace_filter =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-filter" ] ~docv:"CATS"
        ~doc:"Keep only trace records in these comma-separated categories (e.g. chaos,episode).")

let provenance_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "provenance" ] ~docv:"FILE"
        ~doc:
          "Write the merged verdict-provenance graph as JSONL to $(docv): every \
           accusation, rebuttal and verdict with its evidence DAG, replayable with \
           concilium-explain. Byte-identical for any --domains value.")

let flight_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Arm a per-scenario flight recorder (a bounded ring of trace records and \
           provenance deltas) and, if any scenario fails its invariants, dump the failed \
           scenarios' rings to $(docv). No file is written on a green run.")

let timeseries_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeseries" ] ~docv:"FILE"
        ~doc:
          "Sample every scenario's metrics registry at a fixed virtual-time cadence (see \
           $(b,--cadence)) and write the merged epoch-bucketed series as JSONL to $(docv).")

let cadence =
  Arg.(
    value & opt float 300.
    & info [ "cadence" ] ~docv:"SECONDS"
        ~doc:"Epoch width, in virtual seconds, for $(b,--timeseries) sampling.")

let disable_defense =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("suspect-exclusion", Suspect_exclusion);
                ("vote-dedup", Vote_dedup);
                ("density-validation", Density_validation);
              ]))
        None
    & info [ "disable-defense" ] ~docv:"NAME"
        ~doc:
          "Disable one runtime defense (suspect-exclusion, vote-dedup, or \
           density-validation) before running the matrix. CI pairs this with \
           $(b,--expect-failure) as a canary: with the defense off, the matching \
           detection scenario must fail.")

let expect_failure =
  Arg.(
    value & flag
    & info [ "expect-failure" ]
        ~doc:
          "Invert the exit status: succeed only if at least one scenario fails its \
           invariants. Guards disabled-defense canaries against passing vacuously.")

let cmd =
  let doc = "Chaos soak: run fault scenarios against the protocol runtime, check invariants" in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ matrix $ seed $ domains $ trace_out $ metrics_out $ trace_filter
      $ provenance_out $ flight_out $ timeseries_out $ cadence $ disable_defense
      $ expect_failure)

let () = exit (Cmd.eval' cmd)
