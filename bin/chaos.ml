(* Seeded chaos soak runner: execute a matrix of fault scenarios over the
   full protocol runtime and check machine-readable invariants --

     - no scenario raises an uncaught exception;
     - every message produces an outcome before the engine drains;
     - every undelivered message ends in a stewardship resolution or an
       explicit Insufficient_evidence degradation;
     - honest nodes incur zero formal accusations.

   The transcript (stdout) is deterministic JSON: scenario plans are
   sampled from pre-split PRNGs before any parallel fan-out, so the bytes
   are identical for any --domains value. CI diffs --domains 1 vs 2. *)

module World = Concilium_core.World
module Protocol = Concilium_core.Protocol
module Stewardship = Concilium_core.Stewardship
module Dht = Concilium_core.Dht
module Engine = Concilium_netsim.Engine
module Link_state = Concilium_netsim.Link_state
module Chaos = Concilium_netsim.Chaos
module Churn = Concilium_netsim.Churn
module Graph = Concilium_topology.Graph
module Routes = Concilium_topology.Routes
module Id = Concilium_overlay.Id
module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool
module Collector = Concilium_obs.Collector
module Trace = Concilium_obs.Trace
module Export = Concilium_obs.Export

type scenario = {
  name : string;
  chaos : Chaos.config;
  dropper_fraction : float;
  drop_probability : float;
  churn : bool;
  messages : int;
  duration : float;
}

let base ~name ~chaos =
  {
    name;
    chaos;
    dropper_fraction = 0.;
    drop_probability = 0.;
    churn = false;
    messages = 30;
    duration = 3600.;
  }

let small_matrix =
  [
    base ~name:"quiet" ~chaos:Chaos.quiet;
    base ~name:"flaps"
      ~chaos:
        {
          Chaos.quiet with
          Chaos.link_flaps_per_hour = 8.;
          flap_mean_duration = 150.;
          bursts_per_hour = 2.;
          burst_width = 3;
          burst_mean_duration = 180.;
        };
    base ~name:"partition"
      ~chaos:
        {
          Chaos.quiet with
          Chaos.partitions_per_hour = 1.5;
          partition_mean_duration = 240.;
          link_flaps_per_hour = 4.;
          flap_mean_duration = 120.;
        };
    base ~name:"crashes"
      ~chaos:
        {
          Chaos.quiet with
          Chaos.crashes_per_hour = 4.;
          crash_mean_duration = 240.;
          replica_losses_per_hour = 2.;
        };
    base ~name:"control-plane"
      ~chaos:
        {
          Chaos.quiet with
          Chaos.delays_per_hour = 3.;
          delay_mean_duration = 400.;
          delay_extra = 8.;
          duplications_per_hour = 3.;
          duplication_mean_duration = 400.;
          duplication_copies = 3;
        };
    {
      (base ~name:"mixed" ~chaos:Chaos.default_config) with
      dropper_fraction = 0.1;
      drop_probability = 0.8;
      churn = true;
    };
  ]

let full_matrix =
  small_matrix
  @ [
      { (base ~name:"paper-intensity" ~chaos:Chaos.paper_rates) with messages = 60 };
      {
        (base ~name:"everything" ~chaos:Chaos.paper_rates) with
        dropper_fraction = 0.15;
        drop_probability = 0.9;
        churn = true;
        messages = 60;
        duration = 5400.;
      };
    ]

(* ---------- One scenario run ---------- *)

type tally = {
  mutable delivered : int;
  mutable retransmitted : int;  (* delivered or not, needed > 1 attempt *)
  mutable diagnosed_node : int;
  mutable diagnosed_network : int;
  mutable diagnosed_offline : int;
  mutable diagnosed_none : int;  (* resolution with no final target *)
  mutable degraded : int;  (* explicit Insufficient_evidence *)
  mutable unresolved : int;  (* undelivered without any diagnosis: violation *)
  mutable missing : int;  (* no outcome at all: violation *)
  mutable flagged_no_commitment : int;
}

type run_result = {
  scenario : scenario;
  faults : (string * int) list;
  tally : tally;
  honest_accusations : int;
  dht_failover_times : float list;
      (* engine times at which a DHT put succeeded by failing over past a
         dead root replica, from the scenario's trace *)
  failure : string option;  (* uncaught exception, if any *)
}

(* A cut that separates the low-index half of the overlay from the
   high-index half: links used by some cross-side peer path but by no
   same-side one. *)
let build_cuts world =
  let n = World.node_count world in
  let side v = v < n / 2 in
  let paths = ref [] in
  Array.iteri
    (fun v peers ->
      Array.iteri
        (fun i peer ->
          match world.World.peer_paths.(v).(i) with
          | Some path -> paths := (side v, side peer, path.Routes.links) :: !paths
          | None -> ())
        peers)
    world.World.peers;
  let cut = Chaos.cut_of_paths ~paths:(List.rev !paths) in
  if Array.length cut = 0 then [||] else [| cut |]

let run_scenario ~seed ~index ~rng ~obs scenario =
  let tally =
    {
      delivered = 0;
      retransmitted = 0;
      diagnosed_node = 0;
      diagnosed_network = 0;
      diagnosed_offline = 0;
      diagnosed_none = 0;
      degraded = 0;
      unresolved = 0;
      missing = 0;
      flagged_no_commitment = 0;
    }
  in
  try
    let world_seed = Int64.add seed (Int64.of_int (1009 * (index + 1))) in
    let world = World.build (World.tiny_config ~seed:world_seed) in
    let graph = world.World.generated.World.Generate.graph in
    let node_count = World.node_count world in
    let link_count = Graph.link_count graph in
    let engine = Engine.create () in
    let link_state =
      Link_state.create ~link_count ~good_loss:0.001 ~bad_loss:1.
    in
    let plan =
      Chaos.sample ~rng:(Prng.split rng) ~config:scenario.chaos
        ~links:(Array.init link_count Fun.id) ~nodes:node_count ~cuts:(build_cuts world)
        ~horizon:scenario.duration
    in
    (* The Dht exists only after Protocol.create; Replica_loss events fire
       later, during the engine run, so a forward reference suffices. *)
    let dht_ref = ref None in
    let chaos =
      Chaos.compile ~obs:obs.Collector.trace
        ~on_replica_loss:(fun ~node ~time:_ ->
          match !dht_ref with Some dht -> Dht.drop_replica dht ~node | None -> ())
        ~engine ~link_state plan
    in
    let churn_timeline =
      if scenario.churn then
        Some
          (Churn.generate ~rng:(Prng.split rng) ~config:Churn.default_config
             ~hosts:node_count ~duration:scenario.duration)
      else None
    in
    let availability ~time v =
      (match churn_timeline with
      | Some timeline -> Churn.is_online timeline ~host:v ~time
      | None -> true)
      && Chaos.node_online chaos ~time v
    in
    let dropper_count =
      int_of_float (Float.round (scenario.dropper_fraction *. float_of_int node_count))
    in
    let dropper_picks = Prng.sample_without_replacement rng dropper_count node_count in
    let is_dropper = Array.make node_count false in
    Array.iter (fun v -> is_dropper.(v) <- true) dropper_picks;
    let behavior v =
      if is_dropper.(v) then Protocol.Message_dropper scenario.drop_probability
      else Protocol.Honest
    in
    let protocol =
      Protocol.create ~world ~engine ~link_state ~rng:(Prng.split rng) ~availability
        ~control_latency:(fun ~time -> Chaos.control_latency chaos ~time)
        ~put_copies:(fun ~time -> Chaos.put_copies chaos ~time)
        ~obs Protocol.default_config ~behavior
    in
    dht_ref := Some (Protocol.dht protocol);
    Protocol.start_probing protocol ~horizon:scenario.duration;
    let outcomes = Array.make scenario.messages None in
    let message_rng = Prng.split rng in
    let warm = 0.1 *. scenario.duration in
    let span = scenario.duration -. 500. -. warm in
    for i = 0 to scenario.messages - 1 do
      let at = warm +. (span *. float_of_int i /. float_of_int (max 1 scenario.messages)) in
      Engine.schedule_at engine ~time:at (fun _ ->
          let from = Prng.int message_rng node_count in
          let dest = Id.random message_rng in
          Protocol.send_message protocol ~from ~dest ~payload:"soak"
            ~on_outcome:(fun outcome -> outcomes.(i) <- Some outcome))
    done;
    (* Run past the horizon so the last judgments (drop + Delta + injected
       control latency, after retransmits) flush. *)
    Engine.run_until engine (scenario.duration +. 900.);
    Array.iter
      (fun outcome ->
        match outcome with
        | None -> tally.missing <- tally.missing + 1
        | Some o ->
            if o.Protocol.attempts > 1 then tally.retransmitted <- tally.retransmitted + 1;
            if o.Protocol.no_commitment_from <> None then
              tally.flagged_no_commitment <- tally.flagged_no_commitment + 1;
            if o.Protocol.delivered then tally.delivered <- tally.delivered + 1
            else begin
              match o.Protocol.diagnosis with
              | None -> tally.unresolved <- tally.unresolved + 1
              | Some (Protocol.Insufficient_evidence _) -> tally.degraded <- tally.degraded + 1
              | Some (Protocol.Diagnosed resolution) -> (
                  match resolution.Stewardship.final with
                  | Some (Stewardship.Next_hop _) ->
                      tally.diagnosed_node <- tally.diagnosed_node + 1
                  | Some Stewardship.Network ->
                      tally.diagnosed_network <- tally.diagnosed_network + 1
                  | Some (Stewardship.Offline _) ->
                      tally.diagnosed_offline <- tally.diagnosed_offline + 1
                  | None -> tally.diagnosed_none <- tally.diagnosed_none + 1)
            end)
      outcomes;
    (* Formal accusations naming honest nodes: read every replica (ignoring
       availability -- the records are durable) and count. *)
    let honest_accusations = ref 0 in
    let dht = Protocol.dht protocol in
    for v = 0 to node_count - 1 do
      if not is_dropper.(v) then begin
        let hops = ref 0 in
        let named =
          Dht.get dht ~from:0 ~accused_key:(World.public_key_of world v) ~hops ()
        in
        honest_accusations :=
          !honest_accusations + List.length named.Dht.accusations
      end
    done;
    {
      scenario;
      faults = Chaos.fault_counts plan;
      tally;
      honest_accusations = !honest_accusations;
      dht_failover_times =
        List.map fst (Trace.instants obs.Collector.trace ~name:"dht.put.failover");
      failure = None;
    }
  with e ->
    {
      scenario;
      faults = [];
      tally;
      honest_accusations = 0;
      dht_failover_times = [];
      failure = Some (Printexc.to_string e);
    }

(* ---------- Transcript ---------- *)

let scenario_passed r =
  r.failure = None && r.tally.missing = 0 && r.tally.unresolved = 0
  && r.honest_accusations = 0

let emit_json buf ~matrix ~seed results =
  let add fmt = Printf.bprintf buf fmt in
  add "{\n  \"matrix\": %S,\n  \"seed\": %Ld,\n  \"scenarios\": [\n" matrix seed;
  List.iteri
    (fun i r ->
      let t = r.tally in
      add "    {\n      \"name\": %S,\n" r.scenario.name;
      add "      \"faults\": {";
      List.iteri
        (fun j (family, count) ->
          add "%s\"%s\": %d" (if j = 0 then "" else ", ") family count)
        r.faults;
      add "},\n";
      add "      \"sent\": %d,\n" r.scenario.messages;
      add "      \"delivered\": %d,\n" t.delivered;
      add "      \"retransmitted\": %d,\n" t.retransmitted;
      add "      \"diagnosed_node\": %d,\n" t.diagnosed_node;
      add "      \"diagnosed_network\": %d,\n" t.diagnosed_network;
      add "      \"diagnosed_offline\": %d,\n" t.diagnosed_offline;
      add "      \"diagnosed_no_target\": %d,\n" t.diagnosed_none;
      add "      \"degraded_insufficient_evidence\": %d,\n" t.degraded;
      add "      \"flagged_no_commitment\": %d,\n" t.flagged_no_commitment;
      add "      \"unresolved\": %d,\n" t.unresolved;
      add "      \"missing_outcomes\": %d,\n" t.missing;
      add "      \"honest_accusations\": %d,\n" r.honest_accusations;
      add "      \"dht_failover_times\": [";
      List.iteri
        (fun j time -> add "%s%.6f" (if j = 0 then "" else ", ") time)
        r.dht_failover_times;
      add "],\n";
      (match r.failure with
      | None -> add "      \"exception\": null,\n"
      | Some msg -> add "      \"exception\": %S,\n" msg);
      add "      \"pass\": %b\n" (scenario_passed r);
      add "    }%s\n" (if i = List.length results - 1 then "" else ","))
    results;
  add "  ],\n  \"pass\": %b\n}\n" (List.for_all scenario_passed results)

let run matrix seed domains trace_out metrics_out trace_filter =
  let scenarios =
    match matrix with
    | "small" -> small_matrix
    | "full" -> full_matrix
    | other ->
        Printf.eprintf "unknown matrix %S (expected small or full)\n" other;
        exit 2
  in
  (* Pre-split every scenario's PRNG — and pre-allocate its observability
     collector — before the fan-out: the transcript and any exported
     trace/metrics are byte-identical for any --domains value. Collectors
     always record here because the transcript's dht_failover_times field
     reads the trace. *)
  let master = Prng.of_seed seed in
  let rngs = Prng.split_n master (List.length scenarios) in
  let collectors = Collector.shards (List.length scenarios) in
  let indexed = Array.of_list (List.mapi (fun i s -> (i, s)) scenarios) in
  let results =
    Pool.with_pool ?domains (fun pool ->
        Pool.parallel_map ~pool indexed ~f:(fun (i, s) ->
            run_scenario ~seed ~index:i ~rng:rngs.(i) ~obs:collectors.(i) s))
  in
  let results = Array.to_list results in
  if trace_out <> None || metrics_out <> None then begin
    let merged = Collector.merge collectors in
    let filter = Export.filter_of_spec trace_filter in
    Option.iter
      (fun path -> Export.write_trace ~path ?filter merged.Collector.trace)
      trace_out;
    Option.iter (fun path -> Export.write_metrics ~path merged.Collector.metrics) metrics_out
  end;
  let buf = Buffer.create 4096 in
  emit_json buf ~matrix ~seed results;
  print_string (Buffer.contents buf);
  List.iter
    (fun r ->
      Printf.eprintf "scenario %-16s %s\n" r.scenario.name
        (if scenario_passed r then "ok"
         else
           Printf.sprintf "FAILED (missing=%d unresolved=%d honest_accusations=%d%s)"
             r.tally.missing r.tally.unresolved r.honest_accusations
             (match r.failure with None -> "" | Some m -> " exception=" ^ m)))
    results;
  if List.for_all scenario_passed results then 0 else 1

open Cmdliner

let matrix =
  Arg.(
    value & opt string "small"
    & info [ "matrix" ] ~docv:"MATRIX" ~doc:"Scenario matrix: small (CI) or full.")

let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Deterministic seed.")

let domains =
  let doc =
    "Domains for the scenario fan-out (default: recommended count; 1 = sequential). The \
     transcript is byte-identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the merged per-scenario trace (protocol spans + chaos fault events) to \
           $(docv): Chrome trace_event JSON for .json names, JSONL otherwise.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the merged metrics snapshot as JSON to $(docv).")

let trace_filter =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-filter" ] ~docv:"CATS"
        ~doc:"Keep only trace records in these comma-separated categories (e.g. chaos,episode).")

let cmd =
  let doc = "Chaos soak: run fault scenarios against the protocol runtime, check invariants" in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ matrix $ seed $ domains $ trace_out $ metrics_out $ trace_filter)

let () = exit (Cmd.eval' cmd)
