(* concilium-lint: the determinism & partiality static-analysis gate.
   Exits 0 when the scanned tree is clean, 1 when any error-severity
   diagnostic is found, and prints file:line diagnostics either as text or
   as a JSON array. *)

module Engine = Concilium_lint.Engine
module Report = Concilium_lint.Report

open Cmdliner

let paths =
  let doc = "Directories or files to scan (typically: lib bin test)." in
  Arg.(value & pos_all string [ "lib"; "bin"; "test" ] & info [] ~docv:"PATH" ~doc)

let format =
  let doc = "Output format: $(b,text) or $(b,json)." in
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text & info [ "format" ] ~doc)

let list_rules =
  let doc = "List every rule with its family and description, then exit." in
  Arg.(value & flag & info [ "list-rules" ] ~doc)

let run paths format list_rules =
  if list_rules then begin
    Report.print_catalog stdout;
    0
  end
  else begin
    let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
    match missing with
    | path :: _ ->
        Printf.eprintf "lint: no such path: %s\n" path;
        2
    | [] ->
        let diagnostics = Engine.lint_paths paths in
        (match format with
        | `Text -> Report.print_text stdout diagnostics
        | `Json -> Report.print_json stdout diagnostics);
        if Engine.errors diagnostics = [] then 0 else 1
  end

let cmd =
  let doc = "static determinism/partiality lint for the Concilium tree" in
  let info = Cmd.info "concilium-lint" ~doc in
  Cmd.v info Term.(const run $ paths $ format $ list_rules)

let () = exit (Cmd.eval' cmd)
