(* Scaling driver: build 10k/100k/1M-node worlds, route episode workloads
   under sustained churn, and measure build / route / churn-step costs plus
   the incremental-vs-rebuild maintenance ratio.

   All wall-clock measurement lives here, not in lib/ (determinism lint).
   The --transcript file receives only deterministic, replayable lines
   (checksums, digests, counts) so CI can diff --domains 1 vs --domains 2
   byte-for-byte; timings go to --json, which is never diffed. *)

module Scale_world = Concilium_scale.Scale_world
module Inc_table = Concilium_overlay.Inc_table
module Pool = Concilium_util.Pool
module Collector = Concilium_obs.Collector
module Export = Concilium_obs.Export
module Flight = Concilium_obs.Flight

(* This driver is the one place that measures wall-clock cost; nothing it
   times feeds back into simulation state.  lint: allow wall-clock *)
let now () = Unix.gettimeofday ()

(* "10k,100k,1M" / "1_000_000" / "4096" -> sizes. *)
let parse_sizes spec =
  let parse_one raw =
    let cleaned = String.concat "" (String.split_on_char '_' (String.trim raw)) in
    if cleaned = "" then invalid_arg "empty size";
    let last = cleaned.[String.length cleaned - 1] in
    let body multiplier = String.sub cleaned 0 (String.length cleaned - 1) |> int_of_string |> ( * ) multiplier in
    match last with
    | 'k' | 'K' -> body 1_000
    | 'm' | 'M' -> body 1_000_000
    | _ -> int_of_string cleaned
  in
  List.map parse_one (String.split_on_char ',' spec)

let proc_status_kb field =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line ->
          if String.length line > String.length field && String.sub line 0 (String.length field) = field
          then begin
            close_in ic;
            Scanf.sscanf (String.sub line (String.length field) (String.length line - String.length field))
              " %d kB" (fun kb -> Some kb)
          end
          else scan ()
      | exception End_of_file ->
          close_in ic;
          None
    in
    scan ()
  with Sys_error _ -> None

let rss_mb () = match proc_status_kb "VmRSS:" with Some kb -> kb / 1024 | None -> -1
let hwm_mb () = match proc_status_kb "VmHWM:" with Some kb -> kb / 1024 | None -> -1

type run_result = {
  protocol : Scale_world.protocol;
  nodes : int;
  build_s : float;
  churn_events_applied : int;
  churn_event_us : float;
  route_us : float;
  routes : int;
  delivered : int;
  mean_hops : float;
  (* Pastry maintenance accounting; zeros for Chord. *)
  maint_events : int;
  maint_owners : int;
  maint_writes : int;
  rebuild_owner_us : float;
  rebuild_per_event_us : float;
  incremental_speedup : float;
  stale_slots : int;
  rss_after_mb : int;
}

let run_one ~protocol ~nodes ~seed ~pool ~obs ~episodes ~routes_per_episode ~churn_events buf =
  Gc.compact ();
  let config = Scale_world.config ~protocol ~nodes ~seed () in
  let t0 = now () in
  let world = Scale_world.build ?pool config in
  let build_s = now () -. t0 in
  Buffer.add_string buf (Scale_world.header_line world);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Scale_world.state_line world);
  Buffer.add_char buf '\n';
  let churn_time = ref 0. and churn_applied = ref 0 in
  let route_time = ref 0. and routed = ref 0 and delivered = ref 0 and hops = ref 0 in
  let chunk = max 1 (churn_events / max 1 episodes) in
  for episode = 1 to episodes do
    (* Sustained churn: a timed slice of the timeline between episodes. *)
    let t0 = now () in
    let stepped = ref 0 in
    while !stepped < chunk && Scale_world.step_event world do
      incr stepped
    done;
    churn_time := !churn_time +. (now () -. t0);
    churn_applied := !churn_applied + !stepped;
    Buffer.add_string buf (Scale_world.state_line world);
    Buffer.add_char buf '\n';
    let t0 = now () in
    let result = Scale_world.run_episode ?pool ~obs world ~episode ~routes:routes_per_episode in
    route_time := !route_time +. (now () -. t0);
    routed := !routed + result.Scale_world.routes;
    delivered := !delivered + result.Scale_world.delivered;
    hops := !hops + result.Scale_world.total_hops;
    Buffer.add_string buf (Scale_world.episode_line ~episode result);
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Scale_world.maintenance_line world);
  Buffer.add_char buf '\n';
  (* Price the deltas against the full-rebuild oracle: what would each
     churn event have cost if every affected owner's table were rebuilt
     from scratch instead? *)
  let maint_events, maint_owners, maint_writes, rebuild_owner_us, stale_slots =
    match Scale_world.table world with
    | None -> (0, 0, 0, 0., 0)
    | Some table ->
        let sample = min 64 nodes in
        let stride = max 1 (nodes / sample) in
        let t0 = now () in
        let stale = ref 0 and sampled = ref 0 in
        let owner = ref 0 in
        while !owner < nodes do
          stale := !stale + Inc_table.rebuild_owner table !owner;
          incr sampled;
          owner := !owner + stride
        done;
        let per_owner = (now () -. t0) /. float_of_int (max 1 !sampled) *. 1e6 in
        ( Inc_table.events table,
          Inc_table.total_owners table,
          Inc_table.total_writes table,
          per_owner,
          !stale )
  in
  let churn_event_us =
    if !churn_applied = 0 then 0. else !churn_time /. float_of_int !churn_applied *. 1e6
  in
  let owners_per_event =
    if maint_events = 0 then 0. else float_of_int maint_owners /. float_of_int maint_events
  in
  let rebuild_per_event_us = owners_per_event *. rebuild_owner_us in
  let incremental_speedup =
    if churn_event_us > 0. then rebuild_per_event_us /. churn_event_us else 0.
  in
  {
    protocol;
    nodes;
    build_s;
    churn_events_applied = !churn_applied;
    churn_event_us;
    route_us = (if !routed = 0 then 0. else !route_time /. float_of_int !routed *. 1e6);
    routes = !routed;
    delivered = !delivered;
    mean_hops = (if !routed = 0 then 0. else float_of_int !hops /. float_of_int !routed);
    maint_events;
    maint_owners;
    maint_writes;
    rebuild_owner_us;
    rebuild_per_event_us;
    incremental_speedup;
    stale_slots;
    rss_after_mb = rss_mb ();
  }

let emit_json buf ~seed results =
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %Ld,\n" seed);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"protocol\": \"%s\", \"nodes\": %d, \"build_s\": %.4f, \
            \"churn_events\": %d, \"churn_event_us\": %.3f, \"route_us\": %.3f, \
            \"routes\": %d, \"delivered\": %d, \"mean_hops\": %.3f, \
            \"maintenance\": {\"events\": %d, \"owners\": %d, \"writes\": %d, \
            \"stale_slots\": %d}, \"rebuild_owner_us\": %.3f, \
            \"rebuild_per_event_us\": %.3f, \"incremental_speedup\": %.2f, \
            \"rss_after_mb\": %d}"
           (Scale_world.protocol_name r.protocol)
           r.nodes r.build_s r.churn_events_applied r.churn_event_us r.route_us r.routes
           r.delivered r.mean_hops r.maint_events r.maint_owners r.maint_writes
           r.stale_slots r.rebuild_owner_us r.rebuild_per_event_us r.incremental_speedup
           r.rss_after_mb))
    results;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"vm_hwm_mb\": %d\n" (hwm_mb ()));
  Buffer.add_string buf "}\n"

let run protocol_spec sizes_spec seed domains episodes routes churn_events transcript json_out
    metrics_out trace_out flight_out rss_ceiling_mb =
  let sizes =
    match parse_sizes sizes_spec with
    | sizes -> sizes
    | exception _ ->
        Printf.eprintf "scale: cannot parse --nodes %S\n" sizes_spec;
        exit 2
  in
  let protocols =
    match protocol_spec with
    | "pastry" -> [ Scale_world.Pastry ]
    | "chord" -> [ Scale_world.Chord ]
    | "both" -> [ Scale_world.Pastry; Scale_world.Chord ]
    | other ->
        Printf.eprintf "scale: unknown --protocol %S (pastry|chord|both)\n" other;
        exit 2
  in
  let pool = Option.map (fun domains -> Pool.create ~domains ()) domains in
  (* One collector for the whole sweep: every record lands in the
     sequential aggregation pass, so a single shard is already
     deterministic for any --domains value (harness symmetry with
     chaos.exe's --metrics/--trace). *)
  let obs =
    if metrics_out = None && trace_out = None && flight_out = None then Collector.noop
    else Collector.create ()
  in
  let flight =
    Option.map
      (fun _ ->
        let flight = Flight.create () in
        Flight.attach flight obs;
        flight)
      flight_out
  in
  let buf = Buffer.create 4096 in
  let results =
    List.concat_map
      (fun nodes ->
        List.map
          (fun protocol ->
            let r =
              run_one ~protocol ~nodes ~seed ~pool ~obs ~episodes ~routes_per_episode:routes
                ~churn_events buf
            in
            Printf.printf
              "%-6s n=%-9d build %7.2fs  churn %8.2fus/event  route %8.2fus  hops %5.2f  \
               delivered %d/%d  speedup %6.1fx  rss %dMB\n%!"
              (Scale_world.protocol_name protocol)
              nodes r.build_s r.churn_event_us r.route_us r.mean_hops r.delivered r.routes
              r.incremental_speedup r.rss_after_mb;
            r)
          protocols)
      sizes
  in
  Option.iter Pool.shutdown pool;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc)
    transcript;
  Option.iter
    (fun path ->
      let jbuf = Buffer.create 4096 in
      emit_json jbuf ~seed results;
      let oc = open_out path in
      output_string oc (Buffer.contents jbuf);
      close_out oc)
    json_out;
  Option.iter (fun path -> Export.write_metrics ~path obs.Collector.metrics) metrics_out;
  Option.iter (fun path -> Export.write_trace ~path obs.Collector.trace) trace_out;
  let dump_flight reason =
    match (flight, flight_out) with
    | Some flight, Some path -> Flight.write ~path ~reason flight
    | _ -> ()
  in
  let stale = List.fold_left (fun acc r -> acc + r.stale_slots) 0 results in
  if stale > 0 then begin
    Printf.eprintf "scale: %d stale slots disagree with the rebuild oracle\n" stale;
    dump_flight (Printf.sprintf "stale-slots: %d" stale);
    exit 1
  end;
  (match rss_ceiling_mb with
  | Some ceiling ->
      let hwm = hwm_mb () in
      if hwm > ceiling then begin
        Printf.eprintf "scale: peak RSS %dMB exceeds ceiling %dMB\n" hwm ceiling;
        dump_flight (Printf.sprintf "rss-ceiling: %dMB > %dMB" hwm ceiling);
        exit 1
      end
  | None -> ());
  0

open Cmdliner

let protocol =
  Arg.(
    value & opt string "both"
    & info [ "protocol" ] ~docv:"P" ~doc:"Overlay protocol: pastry, chord, or both.")

let nodes =
  Arg.(
    value & opt string "10k"
    & info [ "nodes" ] ~docv:"SIZES"
        ~doc:
          "Comma-separated world sizes; accepts k/M suffixes and underscores \
           (e.g. 10k,100k,1M or 1_000_000).")

let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Deterministic seed.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domains for the sweep-build and episode fan-outs (default: inline). The \
           transcript is byte-identical for any value.")

let episodes =
  Arg.(value & opt int 3 & info [ "episodes" ] ~docv:"N" ~doc:"Episode batches per world.")

let routes =
  Arg.(value & opt int 500 & info [ "routes" ] ~docv:"N" ~doc:"Routes per episode.")

let churn_events =
  Arg.(
    value & opt int 1500
    & info [ "churn-events" ] ~docv:"N"
        ~doc:"Total churn events to apply per world (split across episodes).")

let transcript =
  Arg.(
    value
    & opt (some string) None
    & info [ "transcript" ] ~docv:"FILE"
        ~doc:"Write the deterministic transcript (checksums, digests; no timings) to $(docv).")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write timing results as JSON to $(docv).")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the metrics snapshot (route counters, hop histogram) as JSON to $(docv). \
           Byte-identical for any --domains value.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the episode trace to $(docv): Chrome trace_event JSON for .json names, \
           JSONL otherwise. Byte-identical for any --domains value.")

let flight_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Arm a flight recorder over the episode trace and dump its ring to $(docv) if \
           the run fails (stale slots or a blown RSS ceiling). No file on a green run.")

let rss_ceiling =
  Arg.(
    value
    & opt (some int) None
    & info [ "rss-ceiling-mb" ] ~docv:"MB"
        ~doc:"Fail (exit 1) if peak RSS (VmHWM) exceeds $(docv) megabytes.")

let cmd =
  let doc = "Scaling bench: flat-array worlds at 10k/100k/1M with incremental tables" in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const run $ protocol $ nodes $ seed $ domains $ episodes $ routes $ churn_events
      $ transcript $ json_out $ metrics_out $ trace_out $ flight_out $ rss_ceiling)

let () = exit (Cmd.eval' cmd)
