(* Lockstep conformance checker: run randomized chaos-derived schedules
   through the optimized protocol state machines and their reference
   models, in lockstep, and fail on the first divergence.

   The stdout transcript is deterministic: schedule seeds are fixed by
   --seed/--budget and the fan-out uses pre-split streams, so the bytes
   are identical for any --domains value (CI diffs --domains 1 vs 2).

   --inject-bug NAME deliberately mis-implements one boundary on the
   implementation side; with --expect-divergence the run then *fails*
   unless the checker catches the mutation and shrinks it to a minimal
   counterexample — the canary proving the checker can see. --replay FILE
   re-runs a previously written counterexample artifact. *)

module Harness = Concilium_check.Harness
module Lockstep = Concilium_check.Lockstep
module Schedule = Concilium_check.Schedule
module Json = Concilium_check.Json
module Flight = Concilium_obs.Flight

let mutation_names = String.concat ", " (List.map Lockstep.mutation_name Lockstep.all_mutations)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  contents

let run_replay path =
  match Harness.replay (read_file path) with
  | Error message ->
      Printf.eprintf "replay: %s\n" message;
      2
  | Ok result ->
      Printf.printf "replay seed=%d ops=%d mutation=%s\n" result.Harness.schedule.Schedule.seed
        (Schedule.op_count result.Harness.schedule)
        (match result.Harness.mutation with
        | None -> "none"
        | Some m -> Lockstep.mutation_name m);
      (match result.Harness.replay_divergence with
      | Some d ->
          Printf.printf "divergence reproduced: %s\n"
            (Format.asprintf "%a" Lockstep.pp_divergence d);
          0
      | None ->
          Printf.printf "divergence did NOT reproduce\n";
          1)

let run_budget ~budget ~seed ~domains ~mutation ~expect_divergence ~artifact_path
    ~flight_path ~reconcile_runs =
  let report = Harness.run_budget ?domains ?mutation ~base_seed:seed ~budget () in
  print_string (Harness.render_transcript report);
  (match (report.Harness.counterexample, artifact_path) with
  | Some (schedule, divergence), Some path ->
      write_file path
        (Json.to_string_pretty (Harness.artifact ~schedule ~mutation ~divergence) ^ "\n")
  | _ -> ());
  (* Flight artifact: the minimized counterexample's schedule rendered as
     one JSONL line per op, dumped through the same ring-buffer format as
     the soak recorders, so a conformance failure ships the exact op
     sequence in the harness-wide artifact shape. *)
  (match (report.Harness.counterexample, flight_path) with
  | Some (schedule, divergence), Some path ->
      let flight = Flight.create () in
      let encoded = Schedule.encode schedule in
      (match encoded with
      | Json.Obj fields ->
          Flight.note flight
            (Json.to_string (Json.Obj (List.filter (fun (name, _) -> name <> "ops") fields)))
      | _ -> ());
      (match Option.bind (Json.member "ops" encoded) Json.to_list with
      | Some ops -> List.iter (fun op -> Flight.note flight (Json.to_string op)) ops
      | None -> ());
      Flight.write ~path ~reason:(Format.asprintf "%a" Lockstep.pp_divergence divergence)
        flight
  | _ -> ());
  let reconcile_ok = ref true in
  for i = 0 to reconcile_runs - 1 do
    let r = Harness.reconcile_bytes ~seed:(seed + (1000 * (i + 1))) in
    let ok = r.Harness.metered = r.Harness.charged && r.Harness.charged > 0 in
    if not ok then reconcile_ok := false;
    Printf.printf "reconcile seed=%d metered=%d charged=%d %s\n"
      (seed + (1000 * (i + 1)))
      r.Harness.metered r.Harness.charged
      (if ok then "ok" else "MISMATCH")
  done;
  if expect_divergence then begin
    (* Canary mode: the run passes only if the injected bug was caught and
       shrunk to a replayable counterexample. *)
    match report.Harness.counterexample with
    | Some (schedule, _) ->
        Printf.printf "canary caught: minimized to %d ops\n" (Schedule.op_count schedule);
        0
    | None ->
        Printf.printf "canary NOT caught\n";
        1
  end
  else if report.Harness.divergent = 0 && !reconcile_ok then 0
  else 1

let run budget seed domains inject_bug expect_divergence artifact_path flight_path
    reconcile_runs replay_path =
  match replay_path with
  | Some path -> run_replay path
  | None -> (
      match inject_bug with
      | Some name when Lockstep.mutation_of_name name = None ->
          Printf.eprintf "unknown mutation %S (expected one of: %s)\n" name mutation_names;
          2
      | _ ->
          let mutation = Option.bind inject_bug Lockstep.mutation_of_name in
          run_budget ~budget ~seed ~domains ~mutation ~expect_divergence ~artifact_path
            ~flight_path ~reconcile_runs)

open Cmdliner

let budget =
  Arg.(
    value & opt int 200
    & info [ "budget" ] ~docv:"N" ~doc:"Number of randomized schedules to run in lockstep.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed; schedule i uses seed+i.")

let domains =
  let doc =
    "Domains for the schedule fan-out (default: recommended count; 1 = sequential). The \
     transcript is byte-identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let inject_bug =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-bug" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "Deliberately mis-implement one boundary on the implementation side (canary). \
              One of: %s."
             mutation_names))

let expect_divergence =
  Arg.(
    value & flag
    & info [ "expect-divergence" ]
        ~doc:
          "Invert the exit status: succeed only if a divergence was found and minimized \
           (use with --inject-bug).")

let artifact_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "artifact" ] ~docv:"FILE"
        ~doc:"Write the minimized counterexample as JSON to $(docv) when a divergence is found.")

let flight_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "When a divergence is found, dump the minimized counterexample schedule (one \
           JSONL line per op) through the flight-recorder format to $(docv). No file on a \
           green run.")

let reconcile_runs =
  Arg.(
    value & opt int 2
    & info [ "reconcile" ] ~docv:"N"
        ~doc:
          "End-to-end byte-reconciliation runs: full protocol executions whose obs byte \
           counters must equal the per-node control-byte totals exactly.")

let replay_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Re-run a counterexample artifact deterministically instead of generating \
              schedules.")

let cmd =
  let doc = "Lockstep conformance checker: reference models vs optimized implementations" in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ budget $ seed $ domains $ inject_bug $ expect_divergence $ artifact_path
      $ flight_path $ reconcile_runs $ replay_path)

let () = exit (Cmd.eval' cmd)
