(* Regenerates every table and figure of the paper's evaluation (Section 4).
   `experiments all --scale small` runs the full suite at reduced scale;
   `--scale paper` matches the paper's dimensions. `--domains N` fans the
   Monte Carlo work out over N domains; output is identical for any N. *)

module E = Concilium_experiments
module World = Concilium_core.World
module Prng = Concilium_util.Prng
module Pool = Concilium_util.Pool
module Collector = Concilium_obs.Collector
module Trace = Concilium_obs.Trace
module Metrics = Concilium_obs.Metrics
module Export = Concilium_obs.Export

type scale = Small | Paper

let world_of_scale scale seed =
  let config =
    match scale with
    | Small -> World.small_config ~seed
    | Paper -> World.paper_config ~seed
  in
  World.build config

let report_world world =
  let graph = world.World.generated.World.Generate.graph in
  Printf.printf
    "world: %d routers, %d links, %d overlay nodes (mean %.1f routing peers)\n%!"
    (World.Graph.node_count graph) (World.Graph.link_count graph) (World.node_count world)
    (Concilium_overlay.Pastry.mean_routing_peer_count world.World.pastry)

let run_fig1 ~pool ~scale ~seed =
  let sizes, trials =
    match scale with
    | Small -> (Array.sub E.Fig1.default_sizes 0 7, 15)
    | Paper -> (E.Fig1.default_sizes, 30)
  in
  E.Output.emit (E.Fig1.table (E.Fig1.run ~pool ~seed ~sizes ~trials ()))

let density_n = 100_000

let run_fig2 ~pool () =
  List.iter E.Output.emit
    (E.Fig2_fig3.tables ~figure:"Figure 2"
       (E.Fig2_fig3.run ~pool ~n:density_n ~suppression:false
          ~gammas:E.Fig2_fig3.default_gammas
          ~colluding_fractions:E.Fig2_fig3.default_fractions ()))

let run_fig3 ~pool () =
  List.iter E.Output.emit
    (E.Fig2_fig3.tables ~figure:"Figure 3"
       (E.Fig2_fig3.run ~pool ~n:density_n ~suppression:true
          ~gammas:E.Fig2_fig3.default_gammas
          ~colluding_fractions:E.Fig2_fig3.default_fractions ()))

let run_fig4 ~pool ~world ~seed =
  let rng = Prng.of_seed (Int64.add seed 4L) in
  let host_sample = min 200 (World.node_count world) in
  E.Output.emit (E.Fig4.table (E.Fig4.run ~pool ~world ~rng ~host_sample ()))

let blame_results ~pool ~world ~scale ~seed =
  let samples = match scale with Small -> 20_000 | Paper -> 50_000 in
  let honest_world =
    E.Blame_world.create ~world (E.Blame_world.paper_config ~colluding_fraction:0. ~seed)
  in
  Printf.printf "failure process: mean bad fraction %.3f (target 0.050)\n%!"
    (E.Blame_world.mean_bad_fraction honest_world);
  let honest = E.Blame_world.run ~pool honest_world ~samples ~bins:25 in
  let collusion_world =
    E.Blame_world.create ~world
      (E.Blame_world.paper_config ~colluding_fraction:0.2 ~seed:(Int64.add seed 5L))
  in
  let collusion = E.Blame_world.run ~pool collusion_world ~samples ~bins:25 in
  (honest, collusion)

let run_fig5 ~pool ~world ~scale ~seed =
  let honest, collusion = blame_results ~pool ~world ~scale ~seed in
  E.Output.emit
    (E.Blame_world.pdf_table ~title:"Figure 5(a): blame pdfs, all peers honest" honest);
  E.Output.emit
    (E.Blame_world.pdf_table ~title:"Figure 5(b): blame pdfs, 20% of peers invert probe results"
       collusion);
  E.Output.emit (E.Blame_world.summary_table honest (Some collusion));
  (honest, collusion)

let run_fig6 ~pool ~honest ~collusion =
  let open E.Blame_world in
  E.Output.emit
    (E.Fig6.table ~w:100
       (E.Fig6.run ~pool ~w:100 ~max_m:30
          { E.Fig6.label = "honest"; p_good = honest.p_good; p_faulty = honest.p_faulty }));
  E.Output.emit
    (E.Fig6.table ~w:100
       (E.Fig6.run ~pool ~w:100 ~max_m:30
          {
            E.Fig6.label = "20% collusion";
            p_good = collusion.p_good;
            p_faulty = collusion.p_faulty;
          }))

let run_bandwidth ~pool () =
  List.iter E.Output.emit (E.Bandwidth_exp.run ~pool ~sizes:E.Bandwidth_exp.default_sizes ())

let run_ablations ~pool ~world ~scale ~seed =
  let samples = match scale with Small -> 8_000 | Paper -> 20_000 in
  List.iter E.Output.emit
    (E.Ablations.run_all ~pool ~world ~samples ~seed:(Int64.add seed 21L) ())

let run_baselines ~pool ~world ~scale ~seed =
  let samples = match scale with Small -> 10_000 | Paper -> 30_000 in
  let bw =
    E.Blame_world.create ~world
      (E.Blame_world.paper_config ~colluding_fraction:0. ~seed:(Int64.add seed 33L))
  in
  E.Output.emit (E.Baselines.table (E.Baselines.run ~pool bw ~samples))

let run_collusion ~pool ~world ~scale ~seed =
  let samples = match scale with Small -> 8_000 | Paper -> 20_000 in
  let result = E.Collusion_curves.run ~pool ~world ~samples ~bins:25 ~seed () in
  E.Output.emit (E.Collusion_curves.table result);
  Printf.printf "zero-adversary rows match honest baseline exactly: %b\n"
    (E.Collusion_curves.zero_adversary_consistent result);
  Printf.printf "false blame monotone in coalition size: %b\n%!"
    (E.Collusion_curves.false_blame_monotone result)

let run_secure_routing ~pool ~scale ~seed =
  let overlay_size, trials =
    match scale with Small -> (300, 300) | Paper -> (1000, 600)
  in
  E.Output.emit
    (E.Secure_routing_exp.table
       (E.Secure_routing_exp.run ~pool ~seed:(Int64.add seed 55L) ~overlay_size ~trials
          ~fractions:E.Secure_routing_exp.default_fractions ()))

let run_chord ~pool ~scale ~seed =
  let sizes, trials =
    match scale with
    | Small -> ([| 128; 512; 2048 |], 10)
    | Paper -> ([| 128; 512; 2048; 8192; 32768 |], 20)
  in
  E.Output.emit (E.Chord_exp.occupancy_table (E.Chord_exp.run ~pool ~seed ~sizes ~trials ()));
  E.Output.emit
    (E.Chord_exp.error_rates_table ~pool ~n:100_000
       ~colluding_fractions:[| 0.05; 0.1; 0.2; 0.3 |] ())

let needs_world = function
  | "fig4" | "fig5" | "fig6" | "all" | "ablations" | "baselines" | "collusion" -> true
  | _ -> false

let run_experiment name scale seed tsv domains trace_out metrics_out trace_filter =
  E.Output.set_tsv_dir tsv;
  (* Phase spans sit at the harness level, over a logical clock that ticks
     once per phase: the Monte Carlo drivers have no engine, and a logical
     clock keeps the trace byte-identical for any --domains value (phases
     run sequentially; only the work inside a phase fans out). *)
  let observing = trace_out <> None || metrics_out <> None in
  let obs = if observing then Collector.create () else Collector.noop in
  let clock = ref 0. in
  let phase label f =
    let span =
      Trace.span_open obs.Collector.trace ~time:!clock ~cat:"experiment"
        ~args:[ ("seed", Trace.String (Int64.to_string seed)) ]
        label
    in
    let result = f () in
    clock := !clock +. 1.;
    Trace.span_close obs.Collector.trace ~time:!clock span;
    Metrics.incr obs.Collector.metrics "experiments.phases";
    Metrics.incr obs.Collector.metrics ("phase." ^ label);
    result
  in
  Pool.with_pool ?domains (fun pool ->
      let world =
        if needs_world name then begin
          let w = world_of_scale scale seed in
          report_world w;
          Some w
        end
        else None
      in
      let world () =
        match world with
        | Some w -> w
        | None -> failwith ("experiment '" ^ name ^ "' needs a world but none was built")
      in
      match name with
      | "fig1" -> phase "fig1" (fun () -> run_fig1 ~pool ~scale ~seed)
      | "fig2" -> phase "fig2" (fun () -> run_fig2 ~pool ())
      | "fig3" -> phase "fig3" (fun () -> run_fig3 ~pool ())
      | "fig4" -> phase "fig4" (fun () -> run_fig4 ~pool ~world:(world ()) ~seed)
      | "fig5" -> phase "fig5" (fun () -> ignore (run_fig5 ~pool ~world:(world ()) ~scale ~seed))
      | "fig6" ->
          phase "fig6" (fun () ->
              let honest, collusion = blame_results ~pool ~world:(world ()) ~scale ~seed in
              run_fig6 ~pool ~honest ~collusion)
      | "bandwidth" -> phase "bandwidth" (fun () -> run_bandwidth ~pool ())
      | "ablations" -> phase "ablations" (fun () -> run_ablations ~pool ~world:(world ()) ~scale ~seed)
      | "baselines" -> phase "baselines" (fun () -> run_baselines ~pool ~world:(world ()) ~scale ~seed)
      | "collusion" -> phase "collusion" (fun () -> run_collusion ~pool ~world:(world ()) ~scale ~seed)
      | "chord" -> phase "chord" (fun () -> run_chord ~pool ~scale ~seed)
      | "secure-routing" -> phase "secure-routing" (fun () -> run_secure_routing ~pool ~scale ~seed)
      | "all" ->
          phase "fig1" (fun () -> run_fig1 ~pool ~scale ~seed);
          phase "fig2" (fun () -> run_fig2 ~pool ());
          phase "fig3" (fun () -> run_fig3 ~pool ());
          phase "fig4" (fun () -> run_fig4 ~pool ~world:(world ()) ~seed);
          let honest, collusion =
            phase "fig5" (fun () -> run_fig5 ~pool ~world:(world ()) ~scale ~seed)
          in
          phase "fig6" (fun () -> run_fig6 ~pool ~honest ~collusion);
          phase "bandwidth" (fun () -> run_bandwidth ~pool ());
          phase "baselines" (fun () -> run_baselines ~pool ~world:(world ()) ~scale ~seed);
          phase "ablations" (fun () -> run_ablations ~pool ~world:(world ()) ~scale ~seed);
          phase "collusion" (fun () -> run_collusion ~pool ~world:(world ()) ~scale ~seed);
          phase "chord" (fun () -> run_chord ~pool ~scale ~seed);
          phase "secure-routing" (fun () -> run_secure_routing ~pool ~scale ~seed)
      | other -> Printf.eprintf "unknown experiment %S\n" other);
  if observing then begin
    let filter = Export.filter_of_spec trace_filter in
    Option.iter (fun path -> Export.write_trace ~path ?filter obs.Collector.trace) trace_out;
    Option.iter
      (fun path -> Export.write_metrics ~path ~time:!clock obs.Collector.metrics)
      metrics_out
  end

open Cmdliner

let experiment =
  let doc =
    "Experiment to run: fig1 fig2 fig3 fig4 fig5 fig6 bandwidth baselines ablations collusion \
     chord secure-routing all."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let scale =
  let doc = "World scale: small (default) or paper (Section 4.2 dimensions)." in
  let parse = function
    | "small" -> Ok Small
    | "paper" -> Ok Paper
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S" s))
  in
  let print fmt s = Format.pp_print_string fmt (match s with Small -> "small" | Paper -> "paper") in
  Arg.(value & opt (conv (parse, print)) Small & info [ "scale" ] ~doc)

let seed =
  let doc = "Deterministic seed." in
  Arg.(value & opt int64 1907L & info [ "seed" ] ~doc)

let tsv =
  let doc = "Also write every table as TSV into this directory." in
  Arg.(value & opt (some string) None & info [ "tsv" ] ~docv:"DIR" ~doc)

let domains =
  let doc =
    "Number of domains for parallel Monte Carlo fan-out (default: the runtime's recommended \
     count; 1 = sequential). Results are identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let trace_out =
  let doc =
    "Write the harness phase trace to $(docv): Chrome trace_event JSON for .json names, \
     JSONL otherwise."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc = "Write the harness metrics snapshot as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_filter =
  let doc = "Keep only trace records in these comma-separated categories." in
  Arg.(value & opt (some string) None & info [ "trace-filter" ] ~docv:"CATS" ~doc)

let cmd =
  let doc = "Reproduce the tables and figures of the Concilium evaluation" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      const run_experiment $ experiment $ scale $ seed $ tsv $ domains $ trace_out
      $ metrics_out $ trace_filter)

let () = exit (Cmd.eval cmd)
