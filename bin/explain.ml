(* Verdict provenance explainer: read a provenance JSONL dump (written by
   chaos.exe/concilium-sim --provenance, or streamed into a flight
   recorder), render the causal chain behind any verdict as text, JSON or
   DOT, and -- the part CI cares about -- re-validate every verdict by
   replaying its recorded evidence through the Blame calculus.

   Replay is bit-exact: a verdict node's probe children are the precise
   votes the judge counted (post defense knobs), in counting order, so
   grouping them by link and feeding them to Blame.blame_of_observations
   must reproduce the recorded blame to the last IEEE bit and the recorded
   verdict exactly. Any divergence means the protocol's provenance lies
   about what it did -- a bug, not a tolerance. The --inject-bug flag
   deliberately corrupts one vote before replay; paired with
   --expect-divergence it is the CI canary proving the validator can
   actually fail. *)

module Json = Concilium_check.Json
module Blame = Concilium_core.Blame

type node = { id : int; kind : string; fields : (string * Json.t) list; mutable children : int list }
(* children: reversed during load, restored to creation order at end *)

type graph = {
  params : (string * float) list;  (* file order *)
  nodes : (int, node) Hashtbl.t;
  order : int list;  (* node ids in file order *)
}

(* ---------- Loading ---------- *)

let fail fmt = Printf.ksprintf failwith fmt

let load path =
  let ic = open_in path in
  let params = ref [] in
  let nodes = Hashtbl.create 1024 in
  let order = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         match Json.parse line with
         | Error msg -> fail "%s:%d: %s" path !lineno msg
         | Ok json -> (
             let node_id =
               (* Provenance node lines carry both "id" and "kind"; trace
                  records in a shared flight stream have an "id" of their
                  own but never a "kind". *)
               match Json.member "kind" json with
               | Some _ -> Json.member "id" json
               | None -> None
             in
             match (Json.member "param" json, Json.member "edge" json, node_id) with
             | Some name, _, _ ->
                 let name =
                   match Json.string_value name with
                   | Some s -> s
                   | None -> fail "%s:%d: param name is not a string" path !lineno
                 in
                 let value =
                   match Option.bind (Json.member "value" json) Json.to_float with
                   | Some v -> v
                   | None -> fail "%s:%d: param %s without value" path !lineno name
                 in
                 params := (name, value) :: List.remove_assoc name !params
             | None, Some pair, _ -> (
                 (* Streamed (flight-recorder) form: edges arrive as their
                    own lines, in creation order. *)
                 match Option.map (List.filter_map Json.to_int) (Json.to_list pair) with
                 | Some [ parent; child ] -> (
                     (* A flight-recorder ring can hold an edge whose
                        parent's node line was already evicted; such
                        orphans are dropped, not errors. *)
                     match Hashtbl.find_opt nodes parent with
                     | Some p -> p.children <- child :: p.children
                     | None -> ())
                 | _ -> fail "%s:%d: malformed edge" path !lineno)
             | None, None, Some id ->
                 let id =
                   match Json.to_int id with
                   | Some id -> id
                   | None -> fail "%s:%d: non-integer node id" path !lineno
                 in
                 let kind =
                   match Option.bind (Json.member "kind" json) Json.string_value with
                   | Some k -> k
                   | None -> fail "%s:%d: node %d without kind" path !lineno id
                 in
                 let fields = match json with Json.Obj fields -> fields | _ -> [] in
                 let children =
                   match Option.bind (Json.member "children" json) Json.to_list with
                   | Some kids -> List.rev (List.filter_map Json.to_int kids)
                   | None -> []
                 in
                 Hashtbl.replace nodes id { id; kind; fields; children };
                 order := id :: !order
             | None, None, None ->
                 (* Foreign line (trace record, flight-recorder header):
                    provenance dumps can share a stream with the obs sinks. *)
                 ())
       end
     done
   with End_of_file -> ());
  close_in ic;
  (* Drop references to evicted nodes along with restoring creation order.
     A full dump never has any; a flight dump's truncation stays visible
     to the validator because replaying a chain missing counted votes
     cannot reproduce the recorded blame. *)
  (* Each node is rewritten independently of every other, so iteration
     order cannot matter. lint: allow hashtbl-order *)
  Hashtbl.iter
    (fun _ n -> n.children <- List.rev (List.filter (Hashtbl.mem nodes) n.children))
    nodes;
  { params = List.rev !params; nodes; order = List.rev !order }

let node g id =
  match Hashtbl.find_opt g.nodes id with
  | Some n -> n
  | None -> fail "provenance references unknown node %d" id

let field n name = List.assoc_opt name n.fields

let int_field n name =
  match Option.bind (field n name) Json.to_int with
  | Some v -> v
  | None -> fail "node %d (%s): missing int field %S" n.id n.kind name

let float_field n name =
  match Option.bind (field n name) Json.to_float with
  | Some v -> v
  | None -> fail "node %d (%s): missing float field %S" n.id n.kind name

let bool_field n name =
  match Option.bind (field n name) Json.to_bool with
  | Some v -> v
  | None -> fail "node %d (%s): missing bool field %S" n.id n.kind name

let string_field n name =
  match Option.bind (field n name) Json.string_value with
  | Some v -> v
  | None -> fail "node %d (%s): missing string field %S" n.id n.kind name

let verdict_ids g = List.filter (fun id -> (node g id).kind = "verdict") g.order

(* ---------- Replay validation ---------- *)

let config_of g =
  let get name default = match List.assoc_opt name g.params with Some v -> v | None -> default in
  {
    Blame.accuracy = get "accuracy" Blame.paper_config.Blame.accuracy;
    delta = get "delta" Blame.paper_config.Blame.delta;
    guilt_threshold = get "guilt_threshold" Blame.paper_config.Blame.guilt_threshold;
  }

(* The verdict's counted votes, in counting order. [flip] corrupts one
   probe's up flag (the --inject-bug canary). *)
let probe_votes g vnode ~flip =
  List.filter_map
    (fun cid ->
      let c = node g cid in
      if c.kind <> "probe" then None
      else
        let up = bool_field c "up" in
        let up = if flip = Some cid then not up else up in
        Some (int_field c "link", (int_field c "prober", up)))
    vnode.children

(* Rebuild the per-link evidence groups the judge folded over. Votes were
   recorded link by link, so consecutive same-link votes form one group; a
   link revisited later in the path (loopy adversarial routes) opens a
   fresh, identical group, exactly as the blame fold saw it. *)
let group_votes votes =
  let grouped =
    List.fold_left
      (fun acc (link, vote) ->
        match acc with
        | (l, votes) :: rest when l = link -> (l, vote :: votes) :: rest
        | _ -> (link, [ vote ]) :: acc)
      [] votes
  in
  Array.of_list (List.rev_map (fun (_, votes) -> List.rev votes) grouped)

let replay g vnode ~flip =
  let config = config_of g in
  let grouped = group_votes (probe_votes g vnode ~flip) in
  let replayed = Blame.blame_of_observations config ~grouped in
  let recorded = float_field vnode "blame" in
  let verdict = string_field vnode "verdict" in
  let exonerated = bool_field vnode "exonerated" in
  let errors = ref [] in
  if Int64.bits_of_float replayed <> Int64.bits_of_float recorded then
    errors :=
      Printf.sprintf "blame diverges: recorded %.17g, replay gives %.17g" recorded replayed
      :: !errors;
  (* An insufficient-evidence abstention never consulted the threshold, so
     blame equality is its whole replay contract. Exonerated verdicts were
     archived as innocent by the revision walk; the blame calculus itself
     said guilty, and replay must still say so. *)
  (match verdict with
  | "insufficient" -> ()
  | "guilty" | "innocent" ->
      let expected =
        if verdict = "guilty" || exonerated then Blame.Guilty else Blame.Innocent
      in
      let actual = Blame.verdict_of_blame config replayed in
      if actual <> expected then
        errors :=
          Printf.sprintf "verdict diverges: recorded %s%s, replay gives %s" verdict
            (if exonerated then " (exonerated)" else "")
            (match actual with Blame.Guilty -> "guilty" | Blame.Innocent -> "innocent")
          :: !errors
  | other -> errors := Printf.sprintf "unknown verdict kind %S" other :: !errors);
  List.rev !errors

let find_injection_target g =
  (* First guilty, non-exonerated verdict that actually counted a vote:
     flipping that vote must move the replayed blame. *)
  let rec search = function
    | [] -> None
    | id :: rest ->
        let v = node g id in
        if string_field v "verdict" = "guilty" && not (bool_field v "exonerated") then
          match List.find_opt (fun cid -> (node g cid).kind = "probe") v.children with
          | Some pid -> Some (id, pid)
          | None -> search rest
        else search rest
  in
  search (verdict_ids g)

let validate_all g ~inject_bug =
  let flip_for =
    if not inject_bug then fun _ -> None
    else
      match find_injection_target g with
      | None -> fail "--inject-bug: no guilty verdict with counted votes in %s" "input"
      | Some (vid, pid) ->
          Printf.printf "injected bug: flipped vote (probe %d) under verdict %d\n" pid vid;
          fun id -> if id = vid then Some pid else None
  in
  let checked = ref 0 in
  let divergences = ref 0 in
  List.iter
    (fun id ->
      incr checked;
      let errors = replay g (node g id) ~flip:(flip_for id) in
      if errors <> [] then begin
        incr divergences;
        List.iter (fun e -> Printf.printf "verdict %d: %s\n" id e) errors
      end)
    (verdict_ids g);
  Printf.printf "validated %d verdicts, %d divergences\n" !checked !divergences;
  !divergences

(* ---------- Rendering ---------- *)

let describe n =
  match n.kind with
  | "probe" ->
      Printf.sprintf "probe: node %d saw link %d %s at t=%.6g%s%s" (int_field n "prober")
        (int_field n "link")
        (if bool_field n "up" then "up" else "down")
        (float_field n "time")
        (if bool_field n "tapped" then " [tapped]" else "")
        (if bool_field n "forged" then " [forged]" else "")
  | "verdict" ->
      Printf.sprintf "verdict: node %d judged node %d %s%s (blame %.6g, %d usable rounds, drop t=%.6g)"
        (int_field n "judge") (int_field n "suspect") (string_field n "verdict")
        (if bool_field n "exonerated" then " after exoneration" else "")
        (float_field n "blame") (int_field n "usable_rounds") (float_field n "drop_time")
  | "accusation" ->
      Printf.sprintf "accusation: node %d formally accused node %d (blame %.6g, t=%.6g)"
        (int_field n "accuser") (int_field n "accused") (float_field n "blame")
        (float_field n "time")
  | "defense" ->
      Printf.sprintf "defense: %s removed %d votes (judge %d, suspect %d)"
        (string_field n "knob") (int_field n "removed") (int_field n "judge")
        (int_field n "suspect")
  | "tap" ->
      Printf.sprintf "tap: %s at node %d (t=%.6g)" (string_field n "firing")
        (int_field n "node") (float_field n "time")
  | "failover" ->
      Printf.sprintf "failover: %s via node %d (t=%.6g)" (string_field n "path")
        (int_field n "node") (float_field n "time")
  | "consolidation" ->
      Printf.sprintf "consolidation: link %d voted %s (%d up / %d down)" (int_field n "link")
        (if bool_field n "up" then "up" else "down")
        (int_field n "up_votes") (int_field n "down_votes")
  | "rebuttal" ->
      Printf.sprintf "rebuttal: accusation by node %d against node %d %s"
        (int_field n "accuser") (int_field n "accused") (string_field n "outcome")
  | other -> Printf.sprintf "%s node" other

(* Transitive closure of a root, ids ascending (edges only ever point to
   earlier-created nodes, so the chain is finite and cycle-free). *)
let chain g root =
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter visit (node g id).children
    end
  in
  visit root;
  List.sort Int.compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])

let render_text g root =
  let buf = Buffer.create 1024 in
  let rec walk indent id =
    let n = node g id in
    Buffer.add_string buf (String.make indent ' ');
    Printf.bprintf buf "#%d %s\n" id (describe n);
    List.iter (walk (indent + 2)) n.children
  in
  walk 0 root;
  Buffer.contents buf

let render_json g root =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, value) -> Printf.bprintf buf {|{"param": %S, "value": %.17g}|} name value;
      Buffer.add_char buf '\n')
    g.params;
  List.iter
    (fun id ->
      let n = node g id in
      let fields = List.filter (fun (name, _) -> name <> "children") n.fields in
      let fields =
        if n.children = [] then fields
        else fields @ [ ("children", Json.List (List.map (fun c -> Json.Int c) n.children)) ]
      in
      Buffer.add_string buf (Json.to_string (Json.Obj fields));
      Buffer.add_char buf '\n')
    (chain g root);
  Buffer.contents buf

let render_dot g root =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph provenance {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  let ids = chain g root in
  List.iter
    (fun id ->
      let n = node g id in
      let label = String.concat "\\\"" (String.split_on_char '"' (describe n)) in
      Printf.bprintf buf "  n%d [label=\"#%d %s\"];\n" id id label)
    ids;
  List.iter
    (fun id -> List.iter (fun c -> Printf.bprintf buf "  n%d -> n%d;\n" id c) (node g id).children)
    ids;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let list_verdicts g =
  List.iter
    (fun id ->
      let n = node g id in
      Printf.printf "#%d %s\n" id (describe n))
    (verdict_ids g)

(* ---------- Driver ---------- *)

type format = Text | Json_format | Dot

let run input verdict format validate inject_bug expect_divergence =
  try
    let g = load input in
    if validate || inject_bug || expect_divergence then begin
      let divergences = validate_all g ~inject_bug in
      if expect_divergence then
        if divergences > 0 then 0
        else begin
          print_endline "expected a divergence, found none: the validator cannot fail";
          1
        end
      else if divergences > 0 then 1
      else 0
    end
    else
      match verdict with
      | None ->
          list_verdicts g;
          0
      | Some id ->
          let n = node g id in
          if n.kind <> "verdict" && n.kind <> "accusation" then
            Printf.printf "note: node %d is a %s, rendering its chain anyway\n" id n.kind;
          print_string
            (match format with
            | Text -> render_text g id
            | Json_format -> render_json g id
            | Dot -> render_dot g id);
          0
  with Failure msg ->
    prerr_endline ("explain: " ^ msg);
    2

open Cmdliner

let input =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Provenance JSONL dump (chaos.exe --provenance, or a flight dump).")

let verdict =
  Arg.(
    value
    & opt (some int) None
    & info [ "verdict" ] ~docv:"ID"
        ~doc:
          "Render the causal chain behind this node (usually a verdict or accusation id). \
           Without it, list every verdict in the dump.")

let format =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json_format); ("dot", Dot) ]) Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Chain rendering: text (default), json, or dot.")

let validate =
  Arg.(
    value & flag
    & info [ "validate-all" ]
        ~doc:
          "Replay every verdict's recorded evidence through the Blame calculus and fail on \
           any divergence from the recorded blame or verdict.")

let inject_bug =
  Arg.(
    value & flag
    & info [ "inject-bug" ]
        ~doc:
          "Flip one counted vote before replaying (implies $(b,--validate-all)). CI pairs \
           this with $(b,--expect-divergence): the corrupted evidence must be caught.")

let expect_divergence =
  Arg.(
    value & flag
    & info [ "expect-divergence" ]
        ~doc:
          "Invert the validation exit status: succeed only if replay found at least one \
           divergence. Guards the --inject-bug canary against passing vacuously.")

let cmd =
  let doc = "Explain and re-validate Concilium verdict provenance chains" in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ input $ verdict $ format $ validate $ inject_bug $ expect_divergence)

let () = exit (Cmd.eval' cmd)
