(** Signed tomographic snapshots (paper Section 3.2).

    After probing its tree, H advertises to its routing peers: a timestamped
    copy of its routing state (one entry per peer, each carrying the peer's
    signed freshness stamp) and a per-path loss summary quantised to one of
    sixteen predefined levels (a few bits per path). The whole snapshot is
    signed by H, which both prevents spoofing and stops H from later
    disavowing the probe results it published. *)

module Id = Concilium_overlay.Id
module Freshness = Concilium_overlay.Freshness
module Signed = Concilium_crypto.Signed
module Pki = Concilium_crypto.Pki

type path_summary = {
  peer : Id.t;
  loss_level : int;  (** quantised end-to-end loss, 0..15 *)
  freshness : Freshness.stamp;
}

type body = {
  origin : Id.t;
  issued_at : float;
  summaries : path_summary list;
}

type t = body Signed.t

val quantize_loss : float -> int
(** Map a loss rate in [0,1] to the nearest predefined level. *)

val level_to_loss : int -> float
(** Representative loss rate of a level. *)

val loss_levels : float array
(** The sixteen predefined levels, ascending. *)

val make :
  origin:Id.t ->
  secret:Pki.secret_key ->
  public:Pki.public_key ->
  now:float ->
  summaries:path_summary list ->
  t

val verify : Pki.t -> t -> bool
(** Check the snapshot's own signature (freshness stamps are validated
    separately, entry by entry, during routing-state validation). *)

val serialize_body : body -> string

val wire_bytes : t -> int
(** Modeled wire size (Section 4.4): 16-byte identifier + 4-byte timestamp
    + signature = 144 bytes per entry, plus one byte of path summary each,
    plus the snapshot signature and header. *)

val diff_entries : previous:t -> current:t -> path_summary list
(** Entries of [current] that are new or whose quantised loss level changed
    since [previous] — what an incremental advertisement must carry.
    Freshness stamps refresh continuously and piggyback on availability
    probes regardless, so timestamp-only changes do not count. *)

val diff_wire_bytes : previous:t -> current:t -> int
(** Modeled size of the incremental advertisement (Section 4.4 notes that
    "sending diffs for updated entries instead of entire tables" cuts the
    routing-state overhead): header + signature + only the changed
    entries. *)
