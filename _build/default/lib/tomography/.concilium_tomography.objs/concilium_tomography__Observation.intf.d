lib/tomography/observation.mli:
