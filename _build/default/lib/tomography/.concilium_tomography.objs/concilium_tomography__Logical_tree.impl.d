lib/tomography/logical_tree.ml: Array List Tree
