lib/tomography/probe_sharing.ml: Array Hashtbl
