lib/tomography/probing.mli: Concilium_util Logical_tree Tree
