lib/tomography/snapshot.mli: Concilium_crypto Concilium_overlay
