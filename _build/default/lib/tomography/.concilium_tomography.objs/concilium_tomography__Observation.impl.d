lib/tomography/observation.ml: Hashtbl List
