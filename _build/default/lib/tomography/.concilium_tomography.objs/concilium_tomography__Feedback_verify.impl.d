lib/tomography/feedback_verify.ml: Array Concilium_stats Float List Logical_tree Minc
