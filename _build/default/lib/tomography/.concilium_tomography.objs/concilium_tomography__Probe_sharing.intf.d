lib/tomography/probe_sharing.mli:
