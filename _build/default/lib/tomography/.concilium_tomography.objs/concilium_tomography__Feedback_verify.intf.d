lib/tomography/feedback_verify.mli: Minc
