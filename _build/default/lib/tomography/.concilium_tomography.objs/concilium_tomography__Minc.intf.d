lib/tomography/minc.mli: Logical_tree Probing
