lib/tomography/snapshot.ml: Array Concilium_crypto Concilium_overlay Hashtbl List Printf String
