lib/tomography/logical_tree.mli: Tree
