lib/tomography/tree.ml: Array Concilium_topology Hashtbl List
