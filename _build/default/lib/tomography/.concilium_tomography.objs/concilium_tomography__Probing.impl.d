lib/tomography/probing.ml: Array Concilium_util Hashtbl List Logical_tree Tree
