lib/tomography/tree.mli: Concilium_topology
