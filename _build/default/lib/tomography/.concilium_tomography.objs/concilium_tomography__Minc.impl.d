lib/tomography/minc.ml: Array List Logical_tree Probing
