module Id = Concilium_overlay.Id
module Freshness = Concilium_overlay.Freshness
module Signed = Concilium_crypto.Signed
module Pki = Concilium_crypto.Pki

type path_summary = {
  peer : Id.t;
  loss_level : int;
  freshness : Freshness.stamp;
}

type body = { origin : Id.t; issued_at : float; summaries : path_summary list }
type t = body Signed.t

(* Sixteen levels skewed towards low loss, where resolution matters. *)
let loss_levels =
  [|
    0.0; 0.005; 0.01; 0.02; 0.03; 0.05; 0.08; 0.12; 0.18; 0.25; 0.35; 0.5; 0.65; 0.8; 0.9; 1.0;
  |]

let quantize_loss loss =
  if loss < 0. || loss > 1. then invalid_arg "Snapshot.quantize_loss: loss outside [0,1]";
  let best = ref 0 and best_gap = ref infinity in
  Array.iteri
    (fun level value ->
      let gap = abs_float (value -. loss) in
      if gap < !best_gap then begin
        best := level;
        best_gap := gap
      end)
    loss_levels;
  !best

let level_to_loss level =
  if level < 0 || level >= Array.length loss_levels then
    invalid_arg "Snapshot.level_to_loss: level out of range";
  loss_levels.(level)

let serialize_summary s =
  Printf.sprintf "%s:%d:%s" (Id.to_hex s.peer) s.loss_level
    (Freshness.serialize (Signed.payload s.freshness))

let serialize_body body =
  Printf.sprintf "snapshot|%s|%.6f|%s" (Id.to_hex body.origin) body.issued_at
    (String.concat ";" (List.map serialize_summary body.summaries))

let make ~origin ~secret ~public ~now ~summaries =
  Signed.make ~serialize:serialize_body ~signer:public ~secret
    { origin; issued_at = now; summaries }

let verify pki t = Signed.check ~serialize:serialize_body pki t

let entry_bytes = 144 (* 16B id + 4B timestamp + signature, per Section 4.4 *)
let summary_bytes = 1
let header_bytes = 16 + 4 (* origin + timestamp *)

let wire_bytes t =
  let body = Signed.payload t in
  let entries = List.length body.summaries in
  header_bytes + (entries * (entry_bytes + summary_bytes)) + Pki.modeled_signature_bytes

let diff_entries ~previous ~current =
  let old_levels = Hashtbl.create 64 in
  List.iter
    (fun s -> Hashtbl.replace old_levels (Id.to_hex s.peer) s.loss_level)
    (Signed.payload previous).summaries;
  List.filter
    (fun s ->
      match Hashtbl.find_opt old_levels (Id.to_hex s.peer) with
      | Some level -> level <> s.loss_level
      | None -> true)
    (Signed.payload current).summaries

let diff_wire_bytes ~previous ~current =
  let changed = List.length (diff_entries ~previous ~current) in
  header_bytes + (changed * (entry_bytes + summary_bytes)) + Pki.modeled_signature_bytes
