module Prng = Concilium_util.Prng

type leaf_behavior = Honest | Suppress_acks of float | Spurious_acks of float

type round = {
  received : bool array;
  acked : bool array;
  forged_detected : int list;
}

let nonce_guess_probability = 1. /. 65536.

let probe_round ~rng ~loss_of_link ~tree ?(behavior = fun _ -> Honest) () =
  let leaves = Tree.leaves tree in
  let leaf_count = Array.length leaves in
  (* One Bernoulli draw per physical link per round: the striped packets
     share fate on shared links, emulating multicast. *)
  let link_fate = Hashtbl.create 64 in
  let link_passes link =
    match Hashtbl.find_opt link_fate link with
    | Some pass -> pass
    | None ->
        let pass = not (Prng.bernoulli rng (loss_of_link link)) in
        Hashtbl.replace link_fate link pass;
        pass
  in
  let received = Array.make leaf_count false in
  let acked = Array.make leaf_count false in
  let forged = ref [] in
  Array.iteri
    (fun leaf_index leaf_node ->
      let links = Tree.path_links_to tree leaf_node in
      let got_it = Array.for_all link_passes links in
      received.(leaf_index) <- got_it;
      match behavior leaf_index with
      | Honest -> acked.(leaf_index) <- got_it
      | Suppress_acks p -> acked.(leaf_index) <- got_it && not (Prng.bernoulli rng p)
      | Spurious_acks p ->
          if got_it then acked.(leaf_index) <- true
          else if Prng.bernoulli rng p then begin
            (* Forged ack: without the probe it cannot echo the nonce. *)
            if Prng.bernoulli rng nonce_guess_probability then acked.(leaf_index) <- true
            else forged := leaf_index :: !forged
          end)
    leaves;
  { received; acked; forged_detected = List.rev !forged }

let probe_rounds ~rng ~loss_of_link ~tree ?(behavior = fun _ -> Honest) ~count () =
  Array.init count (fun _ -> probe_round ~rng ~loss_of_link ~tree ~behavior ())

let acked_matrix rounds = Array.map (fun r -> r.acked) rounds

type link_verdict = Probed_up | Probed_down | Indeterminate

let classify_round logical acked =
  let count = Logical_tree.node_count logical in
  let subtree_acked = Array.make count false in
  for node = 0 to count - 1 do
    subtree_acked.(node) <-
      Array.exists (fun leaf_index -> acked.(leaf_index)) (Logical_tree.descendant_leaves logical node)
  done;
  Array.init count (fun node ->
      if node = 0 then Indeterminate
      else if subtree_acked.(node) then Probed_up
      else if subtree_acked.(Logical_tree.parent logical node) then Probed_down
      else Indeterminate)

let schedule_jitter ~rng ~max_probe_time =
  if max_probe_time <= 0. then invalid_arg "Probing.schedule_jitter: non-positive max";
  Prng.float rng max_probe_time
