(** Striped-unicast probe simulation (paper Section 3.2).

    A probe round sends one packet per routing peer, back-to-back. Because
    the stripe traverses shared interior routers within a tight window, the
    packets share fate on shared links — the round behaves like a single
    multicast packet, which is exactly how the simulation draws it: one
    Bernoulli trial per physical link per round.

    Leaves may misbehave (Section 3.3): suppress acknowledgments for probes
    they received, or fabricate acknowledgments for probes they did not.
    Fabrication requires echoing the probe's nonce, so it is detected with
    probability 1 - 2^-16 per forged ack. *)

type leaf_behavior =
  | Honest
  | Suppress_acks of float  (** drop the ack with this probability *)
  | Spurious_acks of float  (** when the probe was lost, forge an ack with this probability *)

type round = {
  received : bool array;  (** ground truth per leaf index *)
  acked : bool array;  (** what the prober observed *)
  forged_detected : int list;  (** leaf indices caught by the nonce check this round *)
}

val probe_round :
  rng:Concilium_util.Prng.t ->
  loss_of_link:(int -> float) ->
  tree:Tree.t ->
  ?behavior:(int -> leaf_behavior) ->
  unit ->
  round
(** [behavior] maps a leaf index (position in [Tree.leaves]) to its conduct;
    defaults to all-honest. *)

val probe_rounds :
  rng:Concilium_util.Prng.t ->
  loss_of_link:(int -> float) ->
  tree:Tree.t ->
  ?behavior:(int -> leaf_behavior) ->
  count:int ->
  unit ->
  round array

val acked_matrix : round array -> bool array array
(** Ack vectors only, the input shape MINC inference consumes. *)

type link_verdict = Probed_up | Probed_down | Indeterminate

val classify_round : Logical_tree.t -> bool array -> link_verdict array
(** What a single lightweight round reveals about each logical link (indexed
    by logical node; entry 0 is meaningless): [Probed_up] when some leaf
    below acked (the chain demonstrably passed the packet), [Probed_down]
    when the parent demonstrably received it but no leaf below acked, and
    [Indeterminate] otherwise. *)

val schedule_jitter : rng:Concilium_util.Prng.t -> max_probe_time:float -> float
(** Inter-arrival draw for lightweight probe scheduling: uniform over
    [0, max_probe_time] (Section 3.2). *)
