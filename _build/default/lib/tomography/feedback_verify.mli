(** Statistical verification of leaf feedback (paper Section 3.3, after
    Arya et al.).

    Spurious acknowledgments are defeated by probe nonces (see
    {!Probing}). Suppressed acknowledgments are caught statistically: a
    leaf that drops acks for probes it received shows a marginal ack rate
    significantly below what the tree-wide MLE predicts for its position.
    The test cannot distinguish a suppressing leaf from a genuinely
    terrible last-mile chain — neither can any remote observer — but both
    warrant the same response: distrust tomography sourced from that leaf. *)

type suspicion = {
  leaf_index : int;
  observed_rate : float;  (** marginal ack rate of the leaf *)
  expected_rate : float;  (** predicted from the MLE and the chain's nominal loss *)
  z : float;  (** one-proportion z statistic (negative = below expectation) *)
}

val suspect_leaves :
  Minc.estimate ->
  expected_chain_success:(int -> float) ->
  significance:float ->
  suspicion list
(** [expected_chain_success] gives, for a logical leaf node, the success
    probability its last chain would have if healthy (e.g. (1-good_loss)^n).
    Returns leaves whose ack rate falls below prediction at the given
    one-sided significance level, most suspicious first. *)
