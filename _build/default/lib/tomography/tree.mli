(** Physical probe trees (the paper's T_H).

    Host H's tree is the union of the IP routes from H to each of its
    routing peers. Routes produced by a single shortest-path computation
    from H form a tree by construction; leaves are the routing peers. *)

type t

val of_paths : root:int -> paths:Concilium_topology.Routes.path array -> t
(** Each path must start at [root]. Zero-hop paths are ignored.
    @raise Invalid_argument if a path starts elsewhere or the union is not a
    tree (cannot happen for single-source shortest paths). *)

val root : t -> int
(** Router id of the root. *)

val node_count : t -> int
(** Number of tree nodes (routers appearing in the tree). *)

val router_of : t -> int -> int
(** Tree node -> router id. Node 0 is the root. *)

val parent : t -> int -> int
(** Tree parent, -1 for the root. *)

val parent_link : t -> int -> int
(** Physical link id connecting a node to its parent, -1 for the root. *)

val children : t -> int -> int array

val leaves : t -> int array
(** Tree nodes that terminate a probe path (the routing peers), in the
    order their paths were supplied (duplicates removed). *)

val leaf_of_router : t -> int -> int option
(** Tree leaf node for a peer's router id. *)

val physical_links : t -> int array
(** Distinct physical link ids appearing in the tree, ascending. *)

val path_links_to : t -> int -> int array
(** Physical links from the root down to the given tree node, in order. *)
