module Hypothesis = Concilium_stats.Hypothesis
module Normal = Concilium_stats.Normal

type suspicion = {
  leaf_index : int;
  observed_rate : float;
  expected_rate : float;
  z : float;
}

let suspect_leaves (estimate : Minc.estimate) ~expected_chain_success ~significance =
  if significance <= 0. || significance >= 1. then
    invalid_arg "Feedback_verify.suspect_leaves: significance outside (0,1)";
  let logical = estimate.Minc.logical in
  let critical = Normal.standard_quantile (1. -. significance) in
  let leaves = Logical_tree.leaves logical in
  let out = ref [] in
  Array.iteri
    (fun leaf_index node ->
      let parent = Logical_tree.parent logical node in
      let reach_parent = estimate.Minc.path_success.(parent) in
      let expected_rate =
        min (1. -. 1e-9) (max 1e-9 (reach_parent *. expected_chain_success node))
      in
      let observed_rate = estimate.Minc.gamma.(node) in
      let successes =
        int_of_float (Float.round (observed_rate *. float_of_int estimate.Minc.rounds))
      in
      let z =
        Hypothesis.one_proportion_z ~successes ~trials:estimate.Minc.rounds ~p0:expected_rate
      in
      if z < -.critical then
        out := { leaf_index; observed_rate; expected_rate; z } :: !out)
    leaves;
  List.sort (fun a b -> compare a.z b.z) !out
