type plan = {
  members : int array;
  individual_links : int;
  consolidated_links : int;
  amortization : float;
}

let plan ~trees ~members =
  if Array.length members = 0 then invalid_arg "Probe_sharing.plan: no members";
  let distinct = Hashtbl.create 1024 in
  let individual = ref 0 in
  Array.iter
    (fun member ->
      let links = trees.(member) in
      individual := !individual + Array.length links;
      Array.iter (fun link -> Hashtbl.replace distinct link ()) links)
    members;
  let consolidated = Hashtbl.length distinct in
  {
    members = Array.copy members;
    individual_links = !individual;
    consolidated_links = consolidated;
    amortization =
      (if !individual = 0 then 1. else float_of_int consolidated /. float_of_int !individual);
  }

let individual_bytes plan ~per_tree_bytes =
  float_of_int (Array.length plan.members) *. per_tree_bytes

let consolidated_bytes plan ~per_tree_bytes =
  individual_bytes plan ~per_tree_bytes *. plan.amortization
