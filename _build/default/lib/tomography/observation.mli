(** Store of per-link probe observations contributed by peers.

    Blame attribution (paper Section 3.4) consumes the set probes(l) of
    results covering link l initiated within a +/- Delta window around the
    drop time; this store indexes observations by link and time to answer
    exactly that query. *)

type observation = {
  time : float;
  prober : int;  (** overlay node index that ran the probe *)
  link : int;  (** physical link id *)
  up : bool;  (** probed status: true = link was up *)
}

type t

val create : unit -> t
val record : t -> observation -> unit
val count : t -> int

val on_link : t -> link:int -> lo:float -> hi:float -> observation list
(** Observations of [link] with [lo <= time <= hi], oldest first. *)

val latest_on_link : t -> link:int -> observation option

val prune_before : t -> float -> unit
(** Discard observations older than the horizon, bounding memory in long
    runs. *)
