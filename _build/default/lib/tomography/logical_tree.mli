(** Logical (reduced) probe trees.

    Tomographic inference cannot localise loss within an unbranched chain of
    physical links — every chain member affects the same set of leaves — so
    inference runs on the logical tree in which each maximal chain is
    collapsed into one logical link. Logical node 0 is the root; every
    other logical node is a branching point or a leaf of the physical tree. *)

type t

val of_tree : Tree.t -> t

val physical : t -> Tree.t
val node_count : t -> int

val parent : t -> int -> int
(** Logical parent, -1 for the root. *)

val children : t -> int -> int array

val leaves : t -> int array
(** Logical leaves, in the same order as the physical tree's leaves. *)

val chain : t -> int -> int array
(** Physical link ids collapsed into the logical link above a node (root ->
    empty). Ordered top-down. *)

val physical_node : t -> int -> int
(** The physical tree node a logical node stands for. *)

val leaf_count : t -> int

val descendant_leaves : t -> int -> int array
(** Indices into {!leaves} of the leaves at or below a logical node. *)
