module Prng = Concilium_util.Prng

type node_class = Transit | Stub | End_host

type params = {
  seed : int64;
  transit_domains : int;
  routers_per_transit : int;
  transit_chords_per_domain : int;
  interdomain_extra_links : int;
  stub_domains_per_transit_router : int;
  routers_per_stub : int;
  stub_chords_per_domain : int;
  end_hosts_per_stub : int;
}

type world = { graph : Graph.t; classes : node_class array; params : params }

let paper_scale ~seed =
  {
    seed;
    transit_domains = 16;
    routers_per_transit = 20;
    transit_chords_per_domain = 10;
    interdomain_extra_links = 32;
    stub_domains_per_transit_router = 4;
    routers_per_stub = 56;
    stub_chords_per_domain = 40;
    end_hosts_per_stub = 30;
  }

let small_scale ~seed =
  {
    seed;
    transit_domains = 8;
    routers_per_transit = 10;
    transit_chords_per_domain = 5;
    interdomain_extra_links = 12;
    stub_domains_per_transit_router = 3;
    routers_per_stub = 18;
    stub_chords_per_domain = 12;
    end_hosts_per_stub = 12;
  }

let tiny ~seed =
  {
    seed;
    transit_domains = 3;
    routers_per_transit = 4;
    transit_chords_per_domain = 2;
    interdomain_extra_links = 2;
    stub_domains_per_transit_router = 2;
    routers_per_stub = 5;
    stub_chords_per_domain = 2;
    end_hosts_per_stub = 4;
  }

let validate p =
  if p.transit_domains < 1 then invalid_arg "Generate: need at least one transit domain";
  if p.routers_per_transit < 1 then invalid_arg "Generate: need transit routers";
  if p.routers_per_stub < 1 then invalid_arg "Generate: need stub routers";
  if p.stub_domains_per_transit_router < 0 || p.end_hosts_per_stub < 0 then
    invalid_arg "Generate: negative population"

let generate p =
  validate p;
  let rng = Prng.of_seed p.seed in
  let builder = Graph.Builder.create 0 in
  let classes = ref [] in
  let new_node cls =
    classes := cls :: !classes;
    Graph.Builder.add_node builder
  in
  (* Transit core: per-domain ring plus random chords. *)
  let transit_routers =
    Array.init p.transit_domains (fun _ ->
        Array.init p.routers_per_transit (fun _ -> new_node Transit))
  in
  Array.iter
    (fun domain ->
      let count = Array.length domain in
      if count > 1 then
        for i = 0 to count - 1 do
          Graph.Builder.add_link builder domain.(i) domain.((i + 1) mod count)
        done;
      for _ = 1 to p.transit_chords_per_domain do
        let a = Prng.choose rng domain and b = Prng.choose rng domain in
        Graph.Builder.add_link builder a b
      done)
    transit_routers;
  (* Inter-domain connectivity: domain ring plus random extra pairs. *)
  if p.transit_domains > 1 then
    for d = 0 to p.transit_domains - 1 do
      let here = transit_routers.(d) and next = transit_routers.((d + 1) mod p.transit_domains) in
      Graph.Builder.add_link builder (Prng.choose rng here) (Prng.choose rng next)
    done;
  for _ = 1 to p.interdomain_extra_links do
    let da = Prng.int rng p.transit_domains and db = Prng.int rng p.transit_domains in
    if da <> db then
      Graph.Builder.add_link builder
        (Prng.choose rng transit_routers.(da))
        (Prng.choose rng transit_routers.(db))
  done;
  (* Stub domains: a random tree rooted at a gateway router that links up to
     its transit router, densified with random chords; end hosts hang off
     random stub routers with a single link each. *)
  Array.iter
    (fun domain ->
      Array.iter
        (fun transit_router ->
          for _ = 1 to p.stub_domains_per_transit_router do
            let stub = Array.init p.routers_per_stub (fun _ -> new_node Stub) in
            Graph.Builder.add_link builder stub.(0) transit_router;
            for i = 1 to p.routers_per_stub - 1 do
              Graph.Builder.add_link builder stub.(i) stub.(Prng.int rng i)
            done;
            for _ = 1 to p.stub_chords_per_domain do
              let a = Prng.choose rng stub and b = Prng.choose rng stub in
              Graph.Builder.add_link builder a b
            done;
            for _ = 1 to p.end_hosts_per_stub do
              let host = new_node End_host in
              Graph.Builder.add_link builder host (Prng.choose rng stub)
            done
          done)
        domain)
    transit_routers;
  let graph = Graph.build builder in
  let classes = Array.of_list (List.rev !classes) in
  { graph; classes; params = p }

let end_host_count world =
  Array.fold_left
    (fun acc cls -> match cls with End_host -> acc + 1 | Transit | Stub -> acc)
    0 world.classes

let class_of world node = world.classes.(node)
