let magic = "CONCILIUM-TOPO"
let version = 1

let save_world ~path world =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      Marshal.to_channel oc world [])

let load_world ~path =
  match open_in_bin path with
  | exception Sys_error message -> Error message
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let tag = really_input_string ic (String.length magic) in
          if not (String.equal tag magic) then Error "not a Concilium topology file"
          else begin
            let file_version = input_binary_int ic in
            if file_version <> version then
              Error (Printf.sprintf "topology file version %d, expected %d" file_version version)
            else Ok (Marshal.from_channel ic : Generate.world)
          end)
