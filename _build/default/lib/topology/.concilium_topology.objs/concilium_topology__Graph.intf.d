lib/topology/graph.mli:
