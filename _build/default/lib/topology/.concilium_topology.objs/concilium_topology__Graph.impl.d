lib/topology/graph.ml: Array Bytes Hashtbl List Queue
