lib/topology/routes.ml: Array Bytes Graph Queue
