lib/topology/serialize.mli: Generate
