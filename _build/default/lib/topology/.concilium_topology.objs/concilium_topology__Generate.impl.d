lib/topology/generate.ml: Array Concilium_util Graph List
