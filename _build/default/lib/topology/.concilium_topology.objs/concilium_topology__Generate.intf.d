lib/topology/generate.mli: Graph
