lib/topology/serialize.ml: Fun Generate Marshal Printf String
