lib/topology/routes.mli: Graph
