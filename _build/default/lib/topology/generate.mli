(** Synthetic Internet-like topology generator.

    The paper evaluates on a router-level map from the SCAN project
    (112,969 routers, 181,639 links); that dataset is not redistributable,
    so we substitute a deterministic transit-stub hierarchy (GT-ITM style)
    of matching scale and shape: a meshed core of transit domains, stub
    domains hanging off transit routers, and degree-1 end hosts attached to
    stub routers. This preserves the properties the evaluation depends on —
    heavy route sharing near the core, unique last-mile links at the edge —
    as recorded in DESIGN.md. *)

type node_class = Transit | Stub | End_host

type params = {
  seed : int64;
  transit_domains : int;
  routers_per_transit : int;
  transit_chords_per_domain : int;  (** extra intra-domain random links *)
  interdomain_extra_links : int;  (** random transit-domain pairs beyond the ring *)
  stub_domains_per_transit_router : int;
  routers_per_stub : int;
  stub_chords_per_domain : int;
  end_hosts_per_stub : int;
}

type world = {
  graph : Graph.t;
  classes : node_class array;
  params : params;
}

val paper_scale : seed:int64 -> params
(** ~110k routers / ~160k links / ~38k end hosts, so that 3% of end hosts
    gives ~1,150 overlay nodes as in the paper. *)

val small_scale : seed:int64 -> params
(** ~1/16 of paper scale; the default for quick experiment runs. *)

val tiny : seed:int64 -> params
(** A few hundred routers; unit-test sized. *)

val generate : params -> world
(** Deterministic for a given [params]. The result is always connected. *)

val end_host_count : world -> int
val class_of : world -> int -> node_class
