(** Undirected router-level graph in compressed sparse row form.

    Nodes and links are dense integer ids; links are undirected and
    deduplicated. The representation is immutable once built, so routes,
    trees and coverage sets computed from it stay valid. *)

type t

module Builder : sig
  type b

  val create : int -> b
  (** [create n] starts a graph with [n] nodes and no links. *)

  val add_node : b -> int
  (** Append a node, returning its id. *)

  val add_link : b -> int -> int -> unit
  (** Add an undirected link. Self-loops and duplicate links are ignored. *)

  val node_count : b -> int
  val link_count : b -> int
end

val build : Builder.b -> t

val node_count : t -> int
val link_count : t -> int
val degree : t -> int -> int
val mean_degree : t -> float

val iter_neighbors : t -> int -> (neighbor:int -> link:int -> unit) -> unit
(** Visit a node's incident links in a fixed deterministic order. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> neighbor:int -> link:int -> 'a) -> 'a

val link_endpoints : t -> int -> int * int
(** Endpoints of a link, smaller node id first. *)

val link_between : t -> int -> int -> int option
(** Link id connecting two nodes, if any. *)

val end_hosts : t -> int array
(** Nodes with degree exactly 1 — the paper's definition of an end host. *)

val is_connected : t -> bool
