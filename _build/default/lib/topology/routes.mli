(** Shortest-path IP routes.

    Routes are computed by breadth-first search with deterministic
    tie-breaking (neighbors visited in adjacency order), standing in for the
    stable Internet routes the paper assumes (Zhang et al. observe routes
    stable for a day or more, so Concilium treats the link map as quasi-
    static). *)

type path = {
  nodes : int array;  (** visited routers, source first, destination last *)
  links : int array;  (** traversed link ids; length = length nodes - 1 *)
}

val hop_count : path -> int

val shortest_paths : Graph.t -> source:int -> targets:int array -> path option array
(** One BFS from [source]; [None] for unreachable targets. Paths share no
    mutable state and may be retained. *)

val shortest_path : Graph.t -> source:int -> target:int -> path option

val link_depth_fraction : path -> int -> float
(** Position of the i-th link of a path, normalised to [0, 1]: 0 at the
    source edge, 1 at the destination edge. Used to bias failures towards
    the network edge (Section 4.2's beta-distributed depth). *)
