type t = {
  node_count : int;
  link_count : int;
  offsets : int array; (* node -> first index into targets/links *)
  targets : int array; (* flattened neighbor lists, 2 * link_count long *)
  links : int array; (* link id parallel to targets *)
  endpoints_lo : int array; (* link -> smaller endpoint *)
  endpoints_hi : int array;
}

module Builder = struct
  type b = {
    mutable nodes : int;
    mutable edges : (int * int) list; (* normalized lo < hi, newest first *)
    mutable edge_count : int;
    seen : (int * int, unit) Hashtbl.t;
  }

  let create n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative node count";
    { nodes = n; edges = []; edge_count = 0; seen = Hashtbl.create 1024 }

  let add_node b =
    let id = b.nodes in
    b.nodes <- id + 1;
    id

  let add_link b u v =
    if u < 0 || u >= b.nodes || v < 0 || v >= b.nodes then
      invalid_arg "Graph.Builder.add_link: node out of range";
    if u <> v then begin
      let key = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem b.seen key) then begin
        Hashtbl.replace b.seen key ();
        b.edges <- key :: b.edges;
        b.edge_count <- b.edge_count + 1
      end
    end

  let node_count b = b.nodes
  let link_count b = b.edge_count
end

let build (b : Builder.b) =
  let node_count = b.Builder.nodes in
  let link_count = b.Builder.edge_count in
  let endpoints_lo = Array.make link_count 0 in
  let endpoints_hi = Array.make link_count 0 in
  (* Edges were prepended; index them oldest-first for determinism. *)
  List.iteri
    (fun i (lo, hi) ->
      let link = link_count - 1 - i in
      endpoints_lo.(link) <- lo;
      endpoints_hi.(link) <- hi)
    b.Builder.edges;
  let degrees = Array.make node_count 0 in
  for link = 0 to link_count - 1 do
    degrees.(endpoints_lo.(link)) <- degrees.(endpoints_lo.(link)) + 1;
    degrees.(endpoints_hi.(link)) <- degrees.(endpoints_hi.(link)) + 1
  done;
  let offsets = Array.make (node_count + 1) 0 in
  for node = 0 to node_count - 1 do
    offsets.(node + 1) <- offsets.(node) + degrees.(node)
  done;
  let cursor = Array.copy offsets in
  let targets = Array.make (2 * link_count) 0 in
  let links = Array.make (2 * link_count) 0 in
  for link = 0 to link_count - 1 do
    let u = endpoints_lo.(link) and v = endpoints_hi.(link) in
    targets.(cursor.(u)) <- v;
    links.(cursor.(u)) <- link;
    cursor.(u) <- cursor.(u) + 1;
    targets.(cursor.(v)) <- u;
    links.(cursor.(v)) <- link;
    cursor.(v) <- cursor.(v) + 1
  done;
  { node_count; link_count; offsets; targets; links; endpoints_lo; endpoints_hi }

let node_count t = t.node_count
let link_count t = t.link_count
let degree t node = t.offsets.(node + 1) - t.offsets.(node)

let mean_degree t =
  if t.node_count = 0 then 0.
  else 2. *. float_of_int t.link_count /. float_of_int t.node_count

let iter_neighbors t node f =
  for i = t.offsets.(node) to t.offsets.(node + 1) - 1 do
    f ~neighbor:t.targets.(i) ~link:t.links.(i)
  done

let fold_neighbors t node ~init ~f =
  let acc = ref init in
  iter_neighbors t node (fun ~neighbor ~link -> acc := f !acc ~neighbor ~link);
  !acc

let link_endpoints t link = (t.endpoints_lo.(link), t.endpoints_hi.(link))

let link_between t u v =
  let found = ref None in
  iter_neighbors t u (fun ~neighbor ~link -> if neighbor = v then found := Some link);
  !found

let end_hosts t =
  let out = ref [] in
  for node = t.node_count - 1 downto 0 do
    if degree t node = 1 then out := node :: !out
  done;
  Array.of_list !out

let is_connected t =
  if t.node_count = 0 then true
  else begin
    let visited = Bytes.make t.node_count '\000' in
    let queue = Queue.create () in
    Queue.add 0 queue;
    Bytes.set visited 0 '\001';
    let reached = ref 1 in
    while not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      iter_neighbors t node (fun ~neighbor ~link:_ ->
          if Bytes.get visited neighbor = '\000' then begin
            Bytes.set visited neighbor '\001';
            incr reached;
            Queue.add neighbor queue
          end)
    done;
    !reached = t.node_count
  end
