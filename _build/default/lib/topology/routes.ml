type path = { nodes : int array; links : int array }

let hop_count p = Array.length p.links

let shortest_paths graph ~source ~targets =
  let n = Graph.node_count graph in
  let parent_node = Array.make n (-1) in
  let parent_link = Array.make n (-1) in
  let visited = Bytes.make n '\000' in
  let queue = Queue.create () in
  Bytes.set visited source '\001';
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    Graph.iter_neighbors graph node (fun ~neighbor ~link ->
        if Bytes.get visited neighbor = '\000' then begin
          Bytes.set visited neighbor '\001';
          parent_node.(neighbor) <- node;
          parent_link.(neighbor) <- link;
          Queue.add neighbor queue
        end)
  done;
  let extract target =
    if Bytes.get visited target = '\000' then None
    else begin
      let rec walk node nodes links =
        if node = source then (node :: nodes, links)
        else walk parent_node.(node) (node :: nodes) (parent_link.(node) :: links)
      in
      let nodes, links = walk target [] [] in
      Some { nodes = Array.of_list nodes; links = Array.of_list links }
    end
  in
  Array.map extract targets

let shortest_path graph ~source ~target =
  (shortest_paths graph ~source ~targets:[| target |]).(0)

let link_depth_fraction p i =
  let count = hop_count p in
  if i < 0 || i >= count then invalid_arg "Routes.link_depth_fraction: index out of range";
  if count = 1 then 0.5 else float_of_int i /. float_of_int (count - 1)
