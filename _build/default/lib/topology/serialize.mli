(** Saving and loading generated worlds.

    Paper-scale topologies take noticeable time to generate and route over;
    persisting them lets experiment runs share one world. The format is
    OCaml's Marshal wrapped in a versioned, magic-tagged header, so
    mismatched binaries fail loudly instead of reading garbage. *)

val save_world : path:string -> Generate.world -> unit

val load_world : path:string -> (Generate.world, string) result
(** [Error] on missing file, wrong magic, or version mismatch. *)

val magic : string
val version : int
