(** The binomial distribution. Concilium's formal-accusation error analysis
    (paper Section 4.3) models the number of guilty verdicts in a w-slot
    sliding window as Binomial(w, p). *)

val log_pmf : n:int -> p:float -> int -> float
val pmf : n:int -> p:float -> int -> float

val cdf : n:int -> p:float -> int -> float
(** [cdf ~n ~p k] = Pr(X <= k). *)

val survival : n:int -> p:float -> int -> float
(** [survival ~n ~p k] = Pr(X >= k). This is the paper's false-positive
    expression with [k = m], and [cdf ~n ~p (m-1)] is its false negative. *)

val mean : n:int -> p:float -> float
val variance : n:int -> p:float -> float
