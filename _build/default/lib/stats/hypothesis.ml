let two_proportion_z ~successes1 ~trials1 ~successes2 ~trials2 =
  if trials1 = 0 || trials2 = 0 then 0.
  else begin
    let n1 = float_of_int trials1 and n2 = float_of_int trials2 in
    let p1 = float_of_int successes1 /. n1 in
    let p2 = float_of_int successes2 /. n2 in
    let pooled = float_of_int (successes1 + successes2) /. (n1 +. n2) in
    let se = sqrt (pooled *. (1. -. pooled) *. ((1. /. n1) +. (1. /. n2))) in
    if se = 0. then 0. else (p1 -. p2) /. se
  end

let two_proportion_p_value ~successes1 ~trials1 ~successes2 ~trials2 =
  let z = two_proportion_z ~successes1 ~trials1 ~successes2 ~trials2 in
  2. *. (1. -. Normal.standard_cdf (abs_float z))

let one_proportion_z ~successes ~trials ~p0 =
  if trials = 0 then 0.
  else begin
    let n = float_of_int trials in
    let p_hat = float_of_int successes /. n in
    let se = sqrt (p0 *. (1. -. p0) /. n) in
    if se = 0. then 0. else (p_hat -. p0) /. se
  end

let one_proportion_p_value_upper ~successes ~trials ~p0 =
  1. -. Normal.standard_cdf (one_proportion_z ~successes ~trials ~p0)
