let sqrt_two = sqrt 2.
let sqrt_two_pi = sqrt (2. *. Float.pi)

let pdf ~mu ~sigma x =
  if sigma <= 0. then invalid_arg "Normal.pdf: sigma must be positive";
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt_two_pi)

let standard_cdf x = 0.5 *. (1. +. Special.erf (x /. sqrt_two))

let cdf ~mu ~sigma x =
  if sigma <= 0. then invalid_arg "Normal.cdf: sigma must be positive";
  standard_cdf ((x -. mu) /. sigma)

(* Acklam's inverse-normal approximation. *)
let standard_quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Normal.standard_quantile: p outside (0,1)";
  let a =
    [|
      -3.969683028665376e+01;
      2.209460984245205e+02;
      -2.759285104469687e+02;
      1.383577518672690e+02;
      -3.066479806614716e+01;
      2.506628277459239e+00;
    |]
  in
  let b =
    [|
      -5.447609879822406e+01;
      1.615858368580409e+02;
      -1.556989798598866e+02;
      6.680131188771972e+01;
      -1.328068155288572e+01;
    |]
  in
  let c =
    [|
      -7.784894002430293e-03;
      -3.223964580411365e-01;
      -2.400758277161838e+00;
      -2.549732539343734e+00;
      4.374664141464968e+00;
      2.938163982698783e+00;
    |]
  in
  let d =
    [|
      7.784695709041462e-03;
      3.224671290700398e-01;
      2.445134137142996e+00;
      3.754408661907416e+00;
    |]
  in
  let p_low = 0.02425 in
  let p_high = 1. -. p_low in
  let rational num den q =
    let top = ref num.(0) and bot = ref 0. in
    for i = 1 to Array.length num - 1 do
      top := (!top *. q) +. num.(i)
    done;
    for i = 0 to Array.length den - 1 do
      bot := (!bot +. den.(i)) *. q
    done;
    !top /. (!bot +. 1.)
  in
  if p < p_low then begin
    let q = sqrt (-2. *. log p) in
    rational c d q
  end
  else if p <= p_high then begin
    let q = p -. 0.5 in
    let r = q *. q in
    let top = ref a.(0) and bot = ref b.(0) in
    for i = 1 to 5 do
      top := (!top *. r) +. a.(i)
    done;
    for i = 1 to 4 do
      bot := (!bot *. r) +. b.(i)
    done;
    let bot = (!bot *. r) +. 1. in
    !top *. q /. bot
  end
  else begin
    let q = sqrt (-2. *. log (1. -. p)) in
    -.rational c d q
  end

let quantile ~mu ~sigma p =
  if sigma <= 0. then invalid_arg "Normal.quantile: sigma must be positive";
  mu +. (sigma *. standard_quantile p)
