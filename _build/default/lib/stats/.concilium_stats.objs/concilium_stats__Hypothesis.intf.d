lib/stats/hypothesis.mli:
