lib/stats/hypothesis.ml: Normal
