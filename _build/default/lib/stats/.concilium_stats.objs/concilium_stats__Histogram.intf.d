lib/stats/histogram.mli:
