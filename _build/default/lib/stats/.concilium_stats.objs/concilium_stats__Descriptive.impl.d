lib/stats/descriptive.ml: Array
