lib/stats/normal.ml: Array Float Special
