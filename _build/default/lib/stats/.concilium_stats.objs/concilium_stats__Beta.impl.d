lib/stats/beta.ml: Concilium_util Special
