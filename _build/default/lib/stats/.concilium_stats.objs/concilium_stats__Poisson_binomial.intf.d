lib/stats/poisson_binomial.mli:
