lib/stats/binomial.ml: Special
