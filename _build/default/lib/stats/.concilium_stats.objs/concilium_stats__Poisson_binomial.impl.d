lib/stats/poisson_binomial.ml: Array Normal
