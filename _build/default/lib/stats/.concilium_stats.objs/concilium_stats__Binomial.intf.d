lib/stats/binomial.mli:
