lib/stats/beta.mli: Concilium_util
