lib/stats/normal.mli:
