lib/stats/special.mli:
