lib/stats/descriptive.mli:
