(** Beta-distribution sampling. The failure injector picks the depth of the
    failing link along a route from Beta(0.9, 0.6), biasing failures towards
    the network edge (paper Section 4.2). *)

val sample : Concilium_util.Prng.t -> alpha:float -> beta:float -> float
(** Draw from Beta(alpha, beta). Uses Johnk's algorithm when both shape
    parameters are <= 1 (the paper's case) and gamma-ratio sampling
    (Marsaglia-Tsang) otherwise. *)

val mean : alpha:float -> beta:float -> float

val log_pdf : alpha:float -> beta:float -> float -> float
val pdf : alpha:float -> beta:float -> float -> float
