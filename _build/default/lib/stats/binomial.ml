let check n p =
  if n < 0 then invalid_arg "Binomial: negative n";
  if p < 0. || p > 1. then invalid_arg "Binomial: p outside [0,1]"

let log_pmf ~n ~p k =
  check n p;
  if k < 0 || k > n then neg_infinity
  else if p = 0. then if k = 0 then 0. else neg_infinity
  else if p = 1. then if k = n then 0. else neg_infinity
  else
    Special.log_binomial_coefficient n k
    +. (float_of_int k *. log p)
    +. (float_of_int (n - k) *. log (1. -. p))

let pmf ~n ~p k = exp (log_pmf ~n ~p k)

let cdf ~n ~p k =
  check n p;
  if k < 0 then 0.
  else if k >= n then 1.
  else begin
    (* Direct summation in log space; n stays small (~window size 100). *)
    let acc = ref 0. in
    for i = 0 to k do
      acc := !acc +. pmf ~n ~p i
    done;
    min 1. !acc
  end

let survival ~n ~p k =
  check n p;
  if k <= 0 then 1.
  else if k > n then 0.
  else begin
    (* Sum the smaller tail directly for accuracy. *)
    if k <= n / 2 then 1. -. cdf ~n ~p (k - 1)
    else begin
      let acc = ref 0. in
      for i = k to n do
        acc := !acc +. pmf ~n ~p i
      done;
      min 1. !acc
    end
  end

let mean ~n ~p =
  check n p;
  float_of_int n *. p

let variance ~n ~p =
  check n p;
  float_of_int n *. p *. (1. -. p)
