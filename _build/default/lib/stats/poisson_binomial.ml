type t = {
  slot_count : int;
  mu : float;
  sigma_sq : float;
  mu_phi : float;
  sigma_phi : float;
}

let of_probabilities probabilities =
  let n = Array.length probabilities in
  if n = 0 then invalid_arg "Poisson_binomial.of_probabilities: empty";
  Array.iter
    (fun p ->
      if p < 0. || p > 1. then invalid_arg "Poisson_binomial: probability outside [0,1]")
    probabilities;
  let nf = float_of_int n in
  let mu = Array.fold_left ( +. ) 0. probabilities /. nf in
  let sigma_sq =
    Array.fold_left (fun acc p -> acc +. ((p -. mu) *. (p -. mu))) 0. probabilities /. nf
  in
  let mu_phi = nf *. mu in
  let variance_phi = (nf *. mu *. (1. -. mu)) -. (nf *. sigma_sq) in
  (* The identity guarantees non-negativity up to rounding; clamp tiny
     negatives and keep a floor so the cdf stays well-defined even for
     degenerate (all-0/all-1) probability vectors. *)
  let sigma_phi = sqrt (max 1e-12 variance_phi) in
  { slot_count = n; mu; sigma_sq; mu_phi; sigma_phi }

let cdf t x = Normal.cdf ~mu:t.mu_phi ~sigma:t.sigma_phi x

let pmf_with_continuity t d =
  let d = float_of_int d in
  max 0. (cdf t (d +. 0.5) -. cdf t (d -. 0.5))

let mean_fraction t = t.mu
