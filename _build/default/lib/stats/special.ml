(* Lanczos approximation, g = 7, 9 coefficients (Numerical Recipes / Boost
   parameterisation). Valid for x > 0; reflection handles (0,0.5). *)
let lanczos_g = 7.

let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: non-positive argument"
  else if x < 0.5 then
    (* Reflection formula: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let log_binomial_coefficient n k =
  if k < 0 || k > n then neg_infinity
  else if k = 0 || k = n then 0.
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

(* Abramowitz & Stegun 7.1.26: |error| <= 1.5e-7 on [0, inf). *)
let erf_positive x =
  let p = 0.3275911 in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429 in
  let t = 1. /. (1. +. (p *. x)) in
  let poly = t *. (a1 +. (t *. (a2 +. (t *. (a3 +. (t *. (a4 +. (t *. a5)))))))) in
  1. -. (poly *. exp (-.x *. x))

let erf x = if x >= 0. then erf_positive x else -.erf_positive (-.x)
let erfc x = 1. -. erf x
