(** The normal distribution. The paper's jump-table occupancy model and
    accusation analysis both lean on the normal cdf (phi in Section 3.1). *)

val pdf : mu:float -> sigma:float -> float -> float
val cdf : mu:float -> sigma:float -> float -> float

val quantile : mu:float -> sigma:float -> float -> float
(** Inverse cdf (Acklam's rational approximation, |relative error| < 1.15e-9).
    Argument must lie in (0, 1). *)

val standard_cdf : float -> float
val standard_quantile : float -> float
