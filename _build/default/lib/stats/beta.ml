module Prng = Concilium_util.Prng

let check alpha beta =
  if alpha <= 0. || beta <= 0. then invalid_arg "Beta: shape parameters must be positive"

(* Marsaglia-Tsang gamma sampler for shape >= 1; shape < 1 is boosted via
   Gamma(a) = Gamma(a+1) * U^(1/a). *)
let rec sample_gamma rng shape =
  if shape < 1. then begin
    let boost = sample_gamma rng (shape +. 1.) in
    let u =
      let rec positive () =
        let u = Prng.uniform rng in
        if u > 0. then u else positive ()
      in
      positive ()
    in
    boost *. (u ** (1. /. shape))
  end
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec loop () =
      let x = Prng.gaussian rng ~mu:0. ~sigma:1. in
      let v = 1. +. (c *. x) in
      if v <= 0. then loop ()
      else begin
        let v3 = v *. v *. v in
        let u = Prng.uniform rng in
        if u < 1. -. (0.0331 *. x *. x *. x *. x) then d *. v3
        else if u > 0. && log u < (0.5 *. x *. x) +. (d *. (1. -. v3 +. log v3)) then d *. v3
        else loop ()
      end
    in
    loop ()
  end

let johnk rng alpha beta =
  let rec loop () =
    let u = Prng.uniform rng and v = Prng.uniform rng in
    if u <= 0. || v <= 0. then loop ()
    else begin
      let x = u ** (1. /. alpha) and y = v ** (1. /. beta) in
      if x +. y <= 1. then
        if x +. y > 0. then x /. (x +. y)
        else begin
          (* Degenerate underflow: fall back to log-space comparison. *)
          let lx = log u /. alpha and ly = log v /. beta in
          let m = max lx ly in
          exp (lx -. m) /. (exp (lx -. m) +. exp (ly -. m))
        end
      else loop ()
    end
  in
  loop ()

let sample rng ~alpha ~beta =
  check alpha beta;
  if alpha <= 1. && beta <= 1. then johnk rng alpha beta
  else begin
    let x = sample_gamma rng alpha in
    let y = sample_gamma rng beta in
    x /. (x +. y)
  end

let mean ~alpha ~beta =
  check alpha beta;
  alpha /. (alpha +. beta)

let log_pdf ~alpha ~beta x =
  check alpha beta;
  if x <= 0. || x >= 1. then neg_infinity
  else
    ((alpha -. 1.) *. log x)
    +. ((beta -. 1.) *. log (1. -. x))
    +. Special.log_gamma (alpha +. beta)
    -. Special.log_gamma alpha -. Special.log_gamma beta

let pdf ~alpha ~beta x = exp (log_pdf ~alpha ~beta x)
