(** Descriptive statistics over float samples. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** population variance *)
  stddev : float;
  minimum : float;
  maximum : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val mean : float array -> float
val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile samples q] for q in [0,1], linear interpolation between order
    statistics. The input need not be sorted. *)

module Online : sig
  (** Welford's streaming moments, for accumulating statistics without
      retaining samples. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
