(** Special functions needed by the distribution code. *)

val log_gamma : float -> float
(** Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
    Accurate to ~1e-13 for positive arguments. *)

val log_binomial_coefficient : int -> int -> float
(** [log_binomial_coefficient n k] = log (n choose k). Returns [neg_infinity]
    when [k < 0] or [k > n]. *)

val erf : float -> float
(** Error function, accurate to ~1.2e-7 (Abramowitz & Stegun 7.1.26 with
    symmetry). *)

val erfc : float -> float
