(** Poisson-binomial occupancy model (paper Section 3.1).

    A jump table's occupancy is a sum of independent, non-identical Bernoulli
    variables (one per slot). Exact evaluation is intractable at table sizes
    of interest, so — following the paper — we use the normal approximation
    whose parameters are derived from the per-slot probabilities:

    mu      = mean of the slot probabilities
    sigma^2 = their population variance
    mu_phi  = l*v*mu                          (mean occupancy count)
    sig^2_phi = l*v*mu*(1-mu) - l*v*sigma^2   (true Poisson-binomial variance)

    The identity in the last line holds because
    sum p_i (1 - p_i) = n*mu - n*(sigma^2 + mu^2) = n*mu*(1-mu) - n*sigma^2. *)

type t = {
  slot_count : int;  (** l*v, total number of slots *)
  mu : float;  (** mean per-slot fill probability *)
  sigma_sq : float;  (** population variance of fill probabilities *)
  mu_phi : float;  (** approximate mean occupancy count *)
  sigma_phi : float;  (** approximate std-dev of occupancy count *)
}

val of_probabilities : float array -> t
(** Build the model from per-slot fill probabilities. *)

val cdf : t -> float -> float
(** Normal-approximation cdf of the occupancy count. *)

val pmf_with_continuity : t -> int -> float
(** Pr(occupancy = d) approximated as phi(d + 1/2) - phi(d - 1/2), the
    continuity-corrected band the paper uses inside its FP/FN sums. *)

val mean_fraction : t -> float
(** Expected fraction of slots occupied, mu. *)
