(** Simple hypothesis tests. The tomographic feedback-verification step
    (paper Section 3.3, after Arya et al.) checks that a leaf's
    acknowledgment pattern is statistically consistent with its siblings';
    leaves that suppress acks show an excess marginal loss that these tests
    flag. *)

val two_proportion_z : successes1:int -> trials1:int -> successes2:int -> trials2:int -> float
(** Pooled two-proportion z statistic for H0: p1 = p2. Positive when sample 1
    has the higher proportion. Returns 0 when either trial count is 0. *)

val two_proportion_p_value : successes1:int -> trials1:int -> successes2:int -> trials2:int -> float
(** Two-sided p-value of the above. *)

val one_proportion_z : successes:int -> trials:int -> p0:float -> float
(** z statistic for an observed proportion against a hypothesised p0. *)

val one_proportion_p_value_upper : successes:int -> trials:int -> p0:float -> float
(** One-sided p-value for the alternative "true proportion > p0". *)
