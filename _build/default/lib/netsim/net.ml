module Prng = Concilium_util.Prng
module Routes = Concilium_topology.Routes

type t = {
  engine : Engine.t;
  state : Link_state.t;
  rng : Prng.t;
  per_link_delay : float;
  sent : int array;
  received : int array;
}

let create ~engine ~state ~rng ?(per_link_delay = 0.005) ~node_count () =
  if per_link_delay < 0. then invalid_arg "Net.create: negative delay";
  {
    engine;
    state;
    rng;
    per_link_delay;
    sent = Array.make node_count 0;
    received = Array.make node_count 0;
  }

let engine t = t.engine

let send t ~path ~size_bytes ~on_delivered ?(on_dropped = fun _ ~link:_ -> ()) () =
  let links = path.Routes.links in
  let nodes = path.Routes.nodes in
  let source = nodes.(0) and destination = nodes.(Array.length nodes - 1) in
  t.sent.(source) <- t.sent.(source) + size_bytes;
  (* Resolve the packet's fate now (the loss state at send time is what
     matters at these time scales) and schedule the outcome callback. *)
  let rec walk i =
    if i >= Array.length links then None
    else if Prng.bernoulli t.rng (Link_state.loss_rate t.state links.(i)) then Some i
    else walk (i + 1)
  in
  match walk 0 with
  | None ->
      let delay = t.per_link_delay *. float_of_int (Array.length links) in
      Engine.schedule t.engine ~delay (fun engine ->
          t.received.(destination) <- t.received.(destination) + size_bytes;
          on_delivered engine)
  | Some i ->
      let delay = t.per_link_delay *. float_of_int (i + 1) in
      let link = links.(i) in
      Engine.schedule t.engine ~delay (fun engine -> on_dropped engine ~link)

let bytes_sent t node = t.sent.(node)
let bytes_received t node = t.received.(node)
let total_bytes_sent t = Array.fold_left ( + ) 0 t.sent
