module Prng = Concilium_util.Prng

type config = {
  mean_uptime : float;
  mean_downtime : float;
  initial_online_fraction : float;
}

let default_config =
  { mean_uptime = 7200.; mean_downtime = 600.; initial_online_fraction = 0.95 }

(* Per host: the initial state plus sorted toggle times. State after an even
   number of toggles equals the initial state. *)
type t = { initial : bool array; toggles : float array array }

let generate ~rng ~config ~hosts ~duration =
  if hosts < 0 then invalid_arg "Churn.generate: negative host count";
  if config.mean_uptime <= 0. || config.mean_downtime <= 0. then
    invalid_arg "Churn.generate: mean periods must be positive";
  let initial = Array.init hosts (fun _ -> Prng.bernoulli rng config.initial_online_fraction) in
  let toggles =
    Array.init hosts (fun host ->
        let events = ref [] in
        let online = ref initial.(host) in
        let clock = ref 0. in
        let continue = ref true in
        while !continue do
          let mean = if !online then config.mean_uptime else config.mean_downtime in
          clock := !clock +. Prng.exponential rng ~rate:(1. /. mean);
          if !clock >= duration then continue := false
          else begin
            events := !clock :: !events;
            online := not !online
          end
        done;
        Array.of_list (List.rev !events))
  in
  { initial; toggles }

let is_online t ~host ~time =
  let toggles = t.toggles.(host) in
  (* Count toggles at or before [time]; parity flips the initial state. *)
  let count = Concilium_util.Sorted.upper_bound compare toggles time in
  if count mod 2 = 0 then t.initial.(host) else not t.initial.(host)

let online_fraction t ~time =
  let hosts = Array.length t.initial in
  if hosts = 0 then 0.
  else begin
    let online = ref 0 in
    for host = 0 to hosts - 1 do
      if is_online t ~host ~time then incr online
    done;
    float_of_int !online /. float_of_int hosts
  end

let transitions t ~host =
  let online = ref t.initial.(host) in
  Array.to_list t.toggles.(host)
  |> List.map (fun time ->
         online := not !online;
         (time, !online))

let mean_online_fraction t ~duration ~samples =
  if samples <= 0 then invalid_arg "Churn.mean_online_fraction: need samples";
  let acc = ref 0. in
  for i = 0 to samples - 1 do
    let time = duration *. (float_of_int i +. 0.5) /. float_of_int samples in
    acc := !acc +. online_fraction t ~time
  done;
  !acc /. float_of_int samples
