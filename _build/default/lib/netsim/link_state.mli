(** Instantaneous per-link status. A link is either good (residual loss
    [good_loss], e.g. light congestive noise) or bad (loss [bad_loss],
    modelling the high-loss incidents of Mahajan et al. that last tens of
    minutes). *)

type t

val create : link_count:int -> good_loss:float -> bad_loss:float -> t
val link_count : t -> int
val is_bad : t -> int -> bool
val set_bad : t -> int -> unit
val set_good : t -> int -> unit
val bad_count : t -> int
val loss_rate : t -> int -> float
val good_loss : t -> float
val bad_loss : t -> float
val bad_links : t -> int list

val path_is_good : t -> int array -> bool
(** No bad link along the given link sequence. *)
