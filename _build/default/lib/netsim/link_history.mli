(** Full record of when each link was bad across a simulation run. The
    blame experiments need the *ground truth* state of arbitrary links at
    arbitrary instants ("was B->C actually good at time t?"), which this
    timeline answers without re-running the failure process. *)

type t

val create : link_count:int -> t
val link_count : t -> int

val add_interval : t -> link:int -> start:float -> finish:float -> unit
(** Record that [link] was bad during [start, finish). Intervals may
    overlap; queries treat their union as bad time. *)

val is_bad_at : t -> link:int -> time:float -> bool

val path_is_good_at : t -> links:int array -> time:float -> bool

val intervals : t -> link:int -> (float * float) list
(** Recorded intervals for a link, in insertion order. *)

val bad_links_at : t -> time:float -> int list

val bad_fraction_at : t -> time:float -> relevant:int array -> float
(** Fraction of [relevant] links bad at [time]. *)

val total_bad_time : t -> link:int -> horizon:float -> float
(** Lebesgue measure of the union of a link's bad intervals within
    [0, horizon]. *)

val replay :
  t -> engine:Engine.t -> state:Link_state.t -> horizon:float -> unit
(** Schedule set_bad/set_good events on the engine so that [state] tracks
    the timeline while the engine runs (intervals clipped to the horizon).
    Overlapping intervals are merged before scheduling. *)
