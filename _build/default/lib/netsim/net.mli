(** Packet transmission over IP routes, driven by the {!Engine}.

    Each traversed link independently drops the packet with its current
    {!Link_state} loss rate and otherwise adds a fixed propagation delay.
    Outcomes are delivered as engine callbacks, and per-node traffic is
    metered for the bandwidth analysis. *)

type t

val create :
  engine:Engine.t ->
  state:Link_state.t ->
  rng:Concilium_util.Prng.t ->
  ?per_link_delay:float ->
  node_count:int ->
  unit ->
  t
(** [per_link_delay] defaults to 5 ms. [node_count] sizes the traffic
    meters (indices are router ids). *)

val engine : t -> Engine.t

val send :
  t ->
  path:Concilium_topology.Routes.path ->
  size_bytes:int ->
  on_delivered:(Engine.t -> unit) ->
  ?on_dropped:(Engine.t -> link:int -> unit) ->
  unit ->
  unit
(** Transmit one packet along [path]. Exactly one of the callbacks fires,
    after the appropriate propagation delay. Bytes are charged to the
    source (sent) and, on delivery, to the destination (received). *)

val bytes_sent : t -> int -> int
val bytes_received : t -> int -> int
val total_bytes_sent : t -> int
