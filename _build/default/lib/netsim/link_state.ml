type t = {
  status : Bytes.t;
  mutable bad_count : int;
  good_loss : float;
  bad_loss : float;
}

let create ~link_count ~good_loss ~bad_loss =
  if link_count < 0 then invalid_arg "Link_state.create: negative link count";
  if good_loss < 0. || good_loss > 1. || bad_loss < 0. || bad_loss > 1. then
    invalid_arg "Link_state.create: loss rates outside [0,1]";
  { status = Bytes.make link_count '\000'; bad_count = 0; good_loss; bad_loss }

let link_count t = Bytes.length t.status
let is_bad t link = Bytes.get t.status link = '\001'

let set_bad t link =
  if not (is_bad t link) then begin
    Bytes.set t.status link '\001';
    t.bad_count <- t.bad_count + 1
  end

let set_good t link =
  if is_bad t link then begin
    Bytes.set t.status link '\000';
    t.bad_count <- t.bad_count - 1
  end

let bad_count t = t.bad_count
let loss_rate t link = if is_bad t link then t.bad_loss else t.good_loss
let good_loss t = t.good_loss
let bad_loss t = t.bad_loss

let bad_links t =
  let out = ref [] in
  for link = Bytes.length t.status - 1 downto 0 do
    if is_bad t link then out := link :: !out
  done;
  !out

let path_is_good t links = Array.for_all (fun link -> not (is_bad t link)) links
