(** The paper's link-failure workload (Section 4.2):

    - 5% of the route-relevant links are bad at any moment;
    - downtimes are normal with mean 15 minutes, std-dev 7.5 minutes
      (clamped to a small positive floor);
    - the failing link is chosen by picking a random overlay route and a
      Beta(0.9, 0.6)-distributed depth along it, biasing failures towards
      the network edge;
    - the process runs in steady state: the run starts with the target
      fraction already failed (warm start with residual downtimes).

    The generator is pure: it produces a {!Link_history} timeline that can
    be queried directly by the blame experiments or replayed onto a
    {!Link_state} through an {!Engine}. *)

type config = {
  target_bad_fraction : float;
  mean_downtime : float;  (** seconds *)
  downtime_stddev : float;
  depth_alpha : float;
  depth_beta : float;
  min_downtime : float;  (** clamp for the normal's left tail *)
}

val paper_config : config
(** 0.05 / 900 s / 450 s / Beta(0.9, 0.6) / 5 s floor. *)

type t = {
  history : Link_history.t;
  relevant_links : int array;  (** distinct links appearing in the routes *)
  failure_events : int;  (** number of bad intervals generated *)
}

val generate :
  rng:Concilium_util.Prng.t ->
  config:config ->
  link_count:int ->
  routes:Concilium_topology.Routes.path array ->
  duration:float ->
  t
(** Simulate the failure process over [0, duration] across the given routes.
    @raise Invalid_argument if [routes] is empty or contains only zero-hop
    paths. *)

val mean_bad_fraction : t -> duration:float -> samples:int -> float
(** Time-averaged fraction of relevant links bad, for validating the
    steady-state target. *)
