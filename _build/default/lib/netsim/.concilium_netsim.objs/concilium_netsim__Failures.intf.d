lib/netsim/failures.mli: Concilium_topology Concilium_util Link_history
