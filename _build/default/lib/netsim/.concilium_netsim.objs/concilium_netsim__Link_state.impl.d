lib/netsim/link_state.ml: Array Bytes
