lib/netsim/net.mli: Concilium_topology Concilium_util Engine Link_state
