lib/netsim/link_history.mli: Engine Link_state
