lib/netsim/link_state.mli:
