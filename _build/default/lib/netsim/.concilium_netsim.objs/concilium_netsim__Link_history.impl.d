lib/netsim/link_history.ml: Array Engine Hashtbl Link_state List
