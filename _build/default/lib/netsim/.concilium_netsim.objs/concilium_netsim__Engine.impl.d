lib/netsim/engine.ml: Array
