lib/netsim/net.ml: Array Concilium_topology Concilium_util Engine Link_state
