lib/netsim/churn.ml: Array Concilium_util List
