lib/netsim/failures.ml: Array Concilium_stats Concilium_topology Concilium_util Float Hashtbl Link_history
