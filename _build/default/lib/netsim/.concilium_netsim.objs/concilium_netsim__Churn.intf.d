lib/netsim/churn.mli: Concilium_util
