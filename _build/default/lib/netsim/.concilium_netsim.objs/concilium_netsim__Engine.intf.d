lib/netsim/engine.mli:
