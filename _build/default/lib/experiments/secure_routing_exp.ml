module Pastry = Concilium_overlay.Pastry
module Secure_routing = Concilium_overlay.Secure_routing
module Id = Concilium_overlay.Id
module Prng = Concilium_util.Prng

type point = { faulty_fraction : float; standard : float; redundant : float }

let default_fractions = [| 0.0; 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.35; 0.4 |]

let run ~seed ~overlay_size ~trials ~fractions =
  let rng = Prng.of_seed seed in
  let ids = Array.init overlay_size (fun _ -> Id.random rng) in
  let overlay = Pastry.build ids in
  Array.to_list
    (Array.map
       (fun faulty_fraction ->
         {
           faulty_fraction;
           standard =
             Secure_routing.delivery_probability overlay ~rng ~faulty_fraction ~trials
               ~mode:`Standard;
           redundant =
             Secure_routing.delivery_probability overlay ~rng ~faulty_fraction ~trials
               ~mode:`Redundant;
         })
       fractions)

let table points =
  {
    Output.title =
      "Secure routing substrate: delivery probability vs faulty fraction (Castro: redundant \
       routing delivers w.h.p. while >= 75% of hosts are honest)";
    header = [ "faulty fraction"; "standard routing"; "secure (redundant)" ];
    rows =
      List.map
        (fun p ->
          [
            Printf.sprintf "%.0f%%" (100. *. p.faulty_fraction);
            Output.cell_pct p.standard;
            Output.cell_pct p.redundant;
          ])
        points;
  }
