lib/experiments/bandwidth_exp.mli: Output
