lib/experiments/output.mli:
