lib/experiments/chord_exp.ml: Array Concilium_overlay Concilium_stats Concilium_util Float List Output Printf
