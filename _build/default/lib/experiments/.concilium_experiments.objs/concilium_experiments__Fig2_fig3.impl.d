lib/experiments/fig2_fig3.ml: Array Concilium_overlay List Output Printf
