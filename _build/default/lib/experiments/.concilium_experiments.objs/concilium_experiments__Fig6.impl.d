lib/experiments/fig6.ml: Concilium_core List Output Printf
