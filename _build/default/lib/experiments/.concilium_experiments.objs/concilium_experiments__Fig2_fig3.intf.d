lib/experiments/fig2_fig3.mli: Concilium_overlay Output
