lib/experiments/baselines.mli: Blame_world Output
