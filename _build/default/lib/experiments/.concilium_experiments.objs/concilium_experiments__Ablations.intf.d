lib/experiments/ablations.mli: Concilium_core Output
