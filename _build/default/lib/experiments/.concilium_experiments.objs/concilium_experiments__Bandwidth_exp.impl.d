lib/experiments/bandwidth_exp.ml: Array Concilium_core List Output Printf
