lib/experiments/fig1.ml: Array Concilium_overlay Concilium_stats Concilium_util List Output
