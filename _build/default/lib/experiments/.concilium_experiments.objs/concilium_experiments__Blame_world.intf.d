lib/experiments/blame_world.mli: Concilium_core Concilium_stats Concilium_util Output
