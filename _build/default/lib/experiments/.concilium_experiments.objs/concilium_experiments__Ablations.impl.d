lib/experiments/ablations.ml: Array Blame_world Concilium_core Concilium_tomography Concilium_util Output Printf
