lib/experiments/blame_world.ml: Array Concilium_core Concilium_netsim Concilium_stats Concilium_topology Concilium_util Float Hashtbl Int64 List Output Printf
