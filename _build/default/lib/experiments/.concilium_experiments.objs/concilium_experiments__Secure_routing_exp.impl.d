lib/experiments/secure_routing_exp.ml: Array Concilium_overlay Concilium_util List Output Printf
