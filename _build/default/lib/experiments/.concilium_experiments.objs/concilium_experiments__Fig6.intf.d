lib/experiments/fig6.mli: Output
