lib/experiments/fig4.mli: Concilium_core Concilium_util Output
