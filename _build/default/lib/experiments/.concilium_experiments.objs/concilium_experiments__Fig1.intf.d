lib/experiments/fig1.mli: Output
