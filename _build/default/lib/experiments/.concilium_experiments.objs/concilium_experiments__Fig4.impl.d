lib/experiments/fig4.ml: Array Concilium_core Concilium_tomography Concilium_topology Concilium_util List Output Printf
