lib/experiments/secure_routing_exp.mli: Output
