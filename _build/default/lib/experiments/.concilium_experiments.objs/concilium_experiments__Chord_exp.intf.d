lib/experiments/chord_exp.mli: Output
