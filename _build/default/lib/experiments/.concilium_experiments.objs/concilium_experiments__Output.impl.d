lib/experiments/output.ml: Buffer Char Filename Fun List Printf String Sys
