lib/experiments/baselines.ml: Blame_world Concilium_util Int64 List Output Printf
