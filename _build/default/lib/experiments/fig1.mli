(** Figure 1: the analytic jump-table occupancy model against Monte-Carlo
    simulation of actual secure-table construction, across overlay sizes. *)

type point = {
  n : int;
  analytic_mean : float;  (** occupancy fraction *)
  analytic_std : float;
  monte_carlo_mean : float;
  monte_carlo_std : float;
}

val run : seed:int64 -> sizes:int array -> trials:int -> point list
val default_sizes : int array
val table : point list -> Output.table
