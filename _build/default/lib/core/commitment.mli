(** Forwarding commitments (paper Section 3.6).

    Before A can hold B accountable for a message, B must have signed a
    statement agreeing to forward it: timestamp, A, B, and the ultimate
    destination Z. Accusations lacking a matching commitment are rejected,
    so A cannot frame B for messages it never sent. Commitments batch and
    piggyback on availability-probe responses; here they are issued
    per-message. *)

module Id = Concilium_overlay.Id
module Signed = Concilium_crypto.Signed
module Pki = Concilium_crypto.Pki

type body = {
  forwarder : Id.t;  (** B: the node committing to forward *)
  sender : Id.t;  (** A: the node it received the message from *)
  destination : Id.t;  (** Z: the message's final destination *)
  message_id : string;  (** hash identifying the covered message *)
  issued_at : float;
}

type t = body Signed.t

val issue :
  forwarder:Id.t ->
  secret:Pki.secret_key ->
  public:Pki.public_key ->
  sender:Id.t ->
  destination:Id.t ->
  message_id:string ->
  now:float ->
  t

val verify : Pki.t -> t -> bool

val covers :
  t -> forwarder:Id.t -> sender:Id.t -> destination:Id.t -> message_id:string -> bool
(** Field-wise match (signature checked separately by {!verify}). *)

val serialize_body : body -> string

val wire_bytes : int
(** Modeled size: ids + timestamp + signature. *)
