type policy =
  | Distrust_sensitive
  | Avoid_in_standard_routing
  | Universal_blacklist of { accusations_per_hour : float }

type peer_record = { verified_accusations : int; observation_hours : float }
type action = No_action | Distrust | Route_around | Blacklist

let evaluate policy record =
  if record.verified_accusations <= 0 then No_action
  else begin
    match policy with
    | Distrust_sensitive -> Distrust
    | Avoid_in_standard_routing -> Route_around
    | Universal_blacklist { accusations_per_hour } ->
        if record.observation_hours <= 0. then No_action
        else if
          float_of_int record.verified_accusations /. record.observation_hours
          >= accusations_per_hour
        then Blacklist
        else No_action
  end

let allows_leaf_set_eviction _ = false

let pp_action fmt action =
  Format.pp_print_string fmt
    (match action with
    | No_action -> "no action"
    | Distrust -> "distrust for sensitive traffic"
    | Route_around -> "avoid in standard routing"
    | Blacklist -> "universal blacklist")
