module Id = Concilium_overlay.Id
module Leaf_set = Concilium_overlay.Leaf_set
module Density_test = Concilium_overlay.Density_test
module Freshness = Concilium_overlay.Freshness
module Routing_table = Concilium_overlay.Routing_table
module Snapshot = Concilium_tomography.Snapshot
module Signed = Concilium_crypto.Signed
module Pki = Concilium_crypto.Pki

type advertisement = {
  snapshot : Snapshot.t;
  jump_table_occupancy : int;
  leaf_set : Leaf_set.t;
}

type config = { gamma_jump : float; gamma_leaf : float; max_stamp_age : float }

let default_config = { gamma_jump = 1.1; gamma_leaf = 1.5; max_stamp_age = 600. }

type failure =
  | Bad_snapshot_signature
  | Stale_or_invalid_stamp of Id.t
  | Sparse_jump_table of { local : int; advertised : int }
  | Sparse_leaf_set of { local_spacing : float; advertised_spacing : float }

type local_view = { own_jump_occupancy : int; own_leaf_set : Leaf_set.t }

let check pki ~now config ~local advertisement =
  let failures = ref [] in
  let push f = failures := f :: !failures in
  if not (Snapshot.verify pki advertisement.snapshot) then push Bad_snapshot_signature;
  let body = Signed.payload advertisement.snapshot in
  List.iter
    (fun summary ->
      let peer = summary.Snapshot.peer in
      if
        not
          (Freshness.validate pki ~now ~max_age:config.max_stamp_age ~expected_holder:peer
             summary.Snapshot.freshness)
      then push (Stale_or_invalid_stamp peer))
    body.Snapshot.summaries;
  (match
     Density_test.check ~gamma:config.gamma_jump ~local_occupancy:local.own_jump_occupancy
       ~peer_occupancy:advertisement.jump_table_occupancy
   with
  | `Suspicious ->
      push
        (Sparse_jump_table
           { local = local.own_jump_occupancy; advertised = advertisement.jump_table_occupancy })
  | `Acceptable -> ());
  (match
     Leaf_set.spacing_check ~gamma:config.gamma_leaf ~local:local.own_leaf_set
       ~peer:advertisement.leaf_set
   with
  | `Suspicious ->
      push
        (Sparse_leaf_set
           {
             local_spacing = Leaf_set.mean_spacing local.own_leaf_set;
             advertised_spacing = Leaf_set.mean_spacing advertisement.leaf_set;
           })
  | `Acceptable -> ());
  List.rev !failures

let pp_failure fmt = function
  | Bad_snapshot_signature -> Format.pp_print_string fmt "snapshot signature invalid"
  | Stale_or_invalid_stamp id ->
      Format.fprintf fmt "stale or invalid freshness stamp for %a" Id.pp id
  | Sparse_jump_table { local; advertised } ->
      Format.fprintf fmt "jump table too sparse (advertised %d vs local %d of %d slots)"
        advertised local
        (Routing_table.rows * Routing_table.columns)
  | Sparse_leaf_set { local_spacing; advertised_spacing } ->
      Format.fprintf fmt "leaf set too sparse (spacing %.3g vs local %.3g)" advertised_spacing
        local_spacing
