(** Batched acknowledgments (paper Section 3.7).

    When two peers exchange many packets it is wasteful to acknowledge each
    individually; one acknowledgment can cover many messages, either as a
    simple counter of arrivals or as the hashes of the specific packets
    received (the two encodings the paper sketches, after Fatih). Counters
    are tiny but cannot say *which* messages vanished; hash lists can. *)

type t

val create : unit -> t
(** A per-(sender, receiver) accumulator for the current batch. *)

val record_received : t -> message_id:string -> unit
(** Note a message's arrival. Duplicate ids are counted once. *)

val received_count : t -> int

type summary =
  | Counter of int
  | Hashes of string list  (** SHA-256 of each received message id *)

val flush : t -> encoding:[ `Counter | `Hashes ] -> summary
(** Emit the batch summary and reset the accumulator. *)

val missing : sent:string list -> summary -> string list option
(** Which of [sent] went unacknowledged. [None] for counter summaries when
    the counter disagrees with |sent| — loss happened, but a counter cannot
    localise it (the trade-off the paper notes). Empty list = all arrived. *)

val wire_bytes : summary -> int
(** Modeled size: 4 bytes for a counter, 32 per hash, plus a signature. *)
