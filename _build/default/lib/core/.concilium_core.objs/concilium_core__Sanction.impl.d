lib/core/sanction.ml: Format
