lib/core/blame.mli: Concilium_tomography Format
