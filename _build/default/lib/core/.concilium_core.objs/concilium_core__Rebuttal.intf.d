lib/core/rebuttal.mli: Accusation Concilium_crypto Concilium_overlay Format
