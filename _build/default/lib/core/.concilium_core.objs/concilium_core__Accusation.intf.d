lib/core/accusation.mli: Blame Commitment Concilium_crypto Concilium_overlay Format
