lib/core/ack_batch.ml: Concilium_crypto Hashtbl List
