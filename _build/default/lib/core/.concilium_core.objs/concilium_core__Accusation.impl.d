lib/core/accusation.ml: Array Blame Commitment Concilium_crypto Concilium_overlay Format List Printf String
