lib/core/dht.ml: Accusation Array Concilium_crypto Concilium_overlay Hashtbl List Printf
