lib/core/bandwidth.ml: Concilium_overlay
