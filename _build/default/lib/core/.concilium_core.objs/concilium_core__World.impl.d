lib/core/world.ml: Array Concilium_crypto Concilium_overlay Concilium_tomography Concilium_topology Concilium_util Float Hashtbl List Printf
