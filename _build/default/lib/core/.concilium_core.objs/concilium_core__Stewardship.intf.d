lib/core/stewardship.mli:
