lib/core/commitment.ml: Concilium_crypto Concilium_overlay Printf String
