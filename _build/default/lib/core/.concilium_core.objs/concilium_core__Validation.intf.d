lib/core/validation.mli: Concilium_crypto Concilium_overlay Concilium_tomography Format
