lib/core/accusation_model.ml: Concilium_stats List
