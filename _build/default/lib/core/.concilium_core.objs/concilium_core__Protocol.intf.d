lib/core/protocol.mli: Accusation Blame Concilium_netsim Concilium_overlay Concilium_tomography Concilium_util Dht Stewardship Validation World
