lib/core/dht.mli: Accusation Concilium_crypto Concilium_overlay
