lib/core/ack_batch.mli:
