lib/core/blame.ml: Array Concilium_tomography Format List
