lib/core/commitment.mli: Concilium_crypto Concilium_overlay
