lib/core/rebuttal.ml: Accusation Blame Concilium_crypto Concilium_overlay Format List
