lib/core/verdict_window.mli: Blame
