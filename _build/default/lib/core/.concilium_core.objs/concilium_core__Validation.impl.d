lib/core/validation.ml: Concilium_crypto Concilium_overlay Concilium_tomography Format List
