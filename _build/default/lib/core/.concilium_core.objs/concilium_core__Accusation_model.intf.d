lib/core/accusation_model.mli:
