lib/core/stewardship.ml: Hashtbl List
