lib/core/sanction.mli: Format
