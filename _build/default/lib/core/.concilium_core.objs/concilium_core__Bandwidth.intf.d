lib/core/bandwidth.mli:
