lib/core/verdict_window.ml: Blame Concilium_util List
