(** Formal, self-verifying fault accusations (paper Section 3.4).

    After a peer accumulates m guilty verdicts in a w-slot window, the
    judge publishes an accusation into the DHT under the accused's public
    key. The accusation carries everything a third party needs to rerun
    the fault calculation: the judged path's links, the signed per-link
    probe votes, the forwarding commitment proving the accused agreed to
    carry the message, and the blame parameters. Verification recomputes
    Equation 2 from the embedded evidence and rejects mismatches, missing
    commitments, or invalid signatures. *)

module Id = Concilium_overlay.Id
module Signed = Concilium_crypto.Signed
module Pki = Concilium_crypto.Pki

type vote = {
  prober : Id.t;
  prober_key : Pki.public_key;
  time : float;
  up : bool;
  vote_signature : Pki.signature;
      (** the prober's signature over this probe result, as extracted from
          its signed tomographic snapshot *)
}

val make_vote :
  prober:Id.t ->
  secret:Pki.secret_key ->
  public:Pki.public_key ->
  link:int ->
  time:float ->
  up:bool ->
  vote
(** What a peer's snapshot attests about one link at one probe time. *)

val vote_valid : Pki.t -> link:int -> vote -> bool

type link_evidence = { link : int; votes : vote list }

type evidence = {
  path_links : int array;  (** physical links of the judged next-hop path *)
  link_votes : link_evidence list;  (** votes for each probed link *)
  drop_time : float;
  commitment : Commitment.t;
}

type body = {
  accuser : Id.t;
  accused : Id.t;
  issued_at : float;
  blame : float;  (** Equation 2 value the accuser computed *)
  config : Blame.config;
  evidence : evidence;
  supporting : evidence list;
      (** the archived evidence behind the *other* guilty verdicts in the
          accuser's window — the paper requires the accusation to carry
          "all of the signed tomographic data" used for its assessments *)
}

type t = body Signed.t

val make :
  accuser:Id.t ->
  secret:Pki.secret_key ->
  public:Pki.public_key ->
  accused:Id.t ->
  config:Blame.config ->
  evidence:evidence ->
  supporting:evidence list ->
  now:float ->
  t
(** Computes the blame from the evidence (excluding the accused's own
    votes) and signs the whole statement; [supporting] evidence from
    earlier guilty verdicts travels with it ([] when this drop stands
    alone).
    @raise Invalid_argument if the blame falls below the guilt threshold —
    an accusation one's own evidence does not support must not be issued. *)

type rejection =
  | Bad_signature
  | Bad_commitment
  | Commitment_mismatch
  | Bad_vote_signature
  | Blame_mismatch  (** recomputed blame disagrees with the claimed value *)
  | Below_threshold
  | Weak_supporting_evidence
      (** a piece of supporting evidence fails its own vote-signature or
          threshold check *)

val verify : Pki.t -> t -> (unit, rejection) result
(** Full third-party check, in the order listed by {!rejection}; every
    piece of supporting evidence must independently clear the guilt
    threshold under recomputation. *)

val recompute_blame : t -> float
(** Equation 2 from the embedded evidence, excluding the accused's votes. *)

val serialize_body : body -> string

val pp_rejection : Format.formatter -> rejection -> unit
