(** Analytic error model for formal accusations (paper Section 4.3).

    With p_good (p_faulty) the per-drop probability that a non-faulty
    (faulty) peer draws a guilty verdict, the number of guilty verdicts in
    a w-slot window is binomial, so

      Pr(false positive) = Pr(W >= m),  W ~ Binomial(w, p_good)
      Pr(false negative) = Pr(W < m),   W ~ Binomial(w, p_faulty). *)

val false_positive : w:int -> m:int -> p_good:float -> float
val false_negative : w:int -> m:int -> p_faulty:float -> float

type sweep_point = { m : int; false_positive : float; false_negative : float }

val sweep : w:int -> p_good:float -> p_faulty:float -> sweep_point list
(** All m from 1 to w. *)

val smallest_m_below :
  w:int -> p_good:float -> p_faulty:float -> target:float -> int option
(** Least m driving both error rates below [target], if any (the paper
    finds m = 6 for honest probing, m = 16 under 20% collusion, both at
    target 1%). *)
