(** Sanctioning policies (paper Section 3.7).

    Concilium identifies faults but leaves the response to the deploying
    network. The paper sketches a spectrum, reproduced here: distrust the
    peer for sensitive traffic, avoid it in standard (non-secure) routing,
    or blacklist it universally once accusations arrive above a rate.
    The one hard rule: honest nodes must NOT unilaterally evict accused
    nodes from leaf sets — that causes inconsistent routing and breaks
    higher-level services (Castro et al., DSN 2004) — so no policy here
    ever touches leaf sets. *)

type policy =
  | Distrust_sensitive
  | Avoid_in_standard_routing
  | Universal_blacklist of { accusations_per_hour : float }

type peer_record = {
  verified_accusations : int;
  observation_hours : float;  (** period over which they accumulated *)
}

type action = No_action | Distrust | Route_around | Blacklist

val evaluate : policy -> peer_record -> action

val allows_leaf_set_eviction : policy -> bool
(** Always [false]; exists so callers encode the invariant explicitly. *)

val pp_action : Format.formatter -> action -> unit
