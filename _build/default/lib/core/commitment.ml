module Id = Concilium_overlay.Id
module Signed = Concilium_crypto.Signed
module Pki = Concilium_crypto.Pki

type body = {
  forwarder : Id.t;
  sender : Id.t;
  destination : Id.t;
  message_id : string;
  issued_at : float;
}

type t = body Signed.t

let serialize_body body =
  Printf.sprintf "commit|%s|%s|%s|%s|%.6f" (Id.to_hex body.forwarder) (Id.to_hex body.sender)
    (Id.to_hex body.destination) body.message_id body.issued_at

let issue ~forwarder ~secret ~public ~sender ~destination ~message_id ~now =
  Signed.make ~serialize:serialize_body ~signer:public ~secret
    { forwarder; sender; destination; message_id; issued_at = now }

let verify pki t = Signed.check ~serialize:serialize_body pki t

let covers t ~forwarder ~sender ~destination ~message_id =
  let body = Signed.payload t in
  Id.equal body.forwarder forwarder && Id.equal body.sender sender
  && Id.equal body.destination destination
  && String.equal body.message_id message_id

let wire_bytes = (3 * 16) + 4 + 32 + Pki.modeled_signature_bytes
