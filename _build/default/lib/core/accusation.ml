module Id = Concilium_overlay.Id
module Signed = Concilium_crypto.Signed
module Pki = Concilium_crypto.Pki

type vote = {
  prober : Id.t;
  prober_key : Pki.public_key;
  time : float;
  up : bool;
  vote_signature : Pki.signature;
}

let vote_payload ~link ~prober ~time ~up =
  Printf.sprintf "vote|%d|%s|%.6f|%b" link (Id.to_hex prober) time up

let make_vote ~prober ~secret ~public ~link ~time ~up =
  {
    prober;
    prober_key = public;
    time;
    up;
    vote_signature = Pki.sign secret (vote_payload ~link ~prober ~time ~up);
  }

let vote_valid pki ~link vote =
  Pki.verify pki vote.prober_key
    (vote_payload ~link ~prober:vote.prober ~time:vote.time ~up:vote.up)
    vote.vote_signature

type link_evidence = { link : int; votes : vote list }

type evidence = {
  path_links : int array;
  link_votes : link_evidence list;
  drop_time : float;
  commitment : Commitment.t;
}

type body = {
  accuser : Id.t;
  accused : Id.t;
  issued_at : float;
  blame : float;
  config : Blame.config;
  evidence : evidence;
  supporting : evidence list;
}

type t = body Signed.t

let serialize_vote v =
  Printf.sprintf "%s,%f,%b,%s" (Id.to_hex v.prober) v.time v.up
    (Pki.signature_to_string v.vote_signature)

let serialize_evidence e =
  let links = String.concat "," (Array.to_list (Array.map string_of_int e.path_links)) in
  let votes =
    String.concat ";"
      (List.map
         (fun le ->
           Printf.sprintf "%d:%s" le.link (String.concat "+" (List.map serialize_vote le.votes)))
         e.link_votes)
  in
  Printf.sprintf "%s|%s|%.6f|%s" links votes e.drop_time
    (Commitment.serialize_body (Signed.payload e.commitment))

let serialize_body b =
  Printf.sprintf "accusation|%s|%s|%.6f|%.9f|%f,%f,%f|%s|%s" (Id.to_hex b.accuser)
    (Id.to_hex b.accused) b.issued_at b.blame b.config.Blame.accuracy b.config.Blame.delta
    b.config.Blame.guilt_threshold (serialize_evidence b.evidence)
    (String.concat "&" (List.map serialize_evidence b.supporting))

(* Votes grouped per path link, excluding the accused's own contributions —
   the layout Blame.blame_of_observations expects. *)
let grouped_votes ~accused ~config:_ evidence =
  Array.map
    (fun link ->
      match List.find_opt (fun le -> le.link = link) evidence.link_votes with
      | None -> []
      | Some le ->
          List.filter_map
            (fun v -> if Id.equal v.prober accused then None else Some (0, v.up))
            le.votes)
    evidence.path_links

let compute_blame ~accused ~config evidence =
  Blame.blame_of_observations config ~grouped:(grouped_votes ~accused ~config evidence)

let make ~accuser ~secret ~public ~accused ~config ~evidence ~supporting ~now =
  let blame = compute_blame ~accused ~config evidence in
  if blame < config.Blame.guilt_threshold then
    invalid_arg "Accusation.make: evidence does not support a guilty verdict";
  Signed.make ~serialize:serialize_body ~signer:public ~secret
    { accuser; accused; issued_at = now; blame; config; evidence; supporting }

type rejection =
  | Bad_signature
  | Bad_commitment
  | Commitment_mismatch
  | Bad_vote_signature
  | Blame_mismatch
  | Below_threshold
  | Weak_supporting_evidence

let recompute_blame t =
  let b = Signed.payload t in
  compute_blame ~accused:b.accused ~config:b.config b.evidence

let verify pki t =
  let b = Signed.payload t in
  let e = b.evidence in
  if not (Signed.check ~serialize:serialize_body pki t) then Error Bad_signature
  else if not (Commitment.verify pki e.commitment) then Error Bad_commitment
  else if not (Id.equal (Signed.payload e.commitment).Commitment.forwarder b.accused) then
    Error Commitment_mismatch
  else if
    not
      (List.for_all
         (fun le -> List.for_all (fun v -> vote_valid pki ~link:le.link v) le.votes)
         e.link_votes)
  then Error Bad_vote_signature
  else begin
    let recomputed = compute_blame ~accused:b.accused ~config:b.config e in
    if abs_float (recomputed -. b.blame) > 1e-9 then Error Blame_mismatch
    else if recomputed < b.config.Blame.guilt_threshold then Error Below_threshold
    else begin
      let supporting_ok extra =
        List.for_all
          (fun le -> List.for_all (fun v -> vote_valid pki ~link:le.link v) le.votes)
          extra.link_votes
        && compute_blame ~accused:b.accused ~config:b.config extra
           >= b.config.Blame.guilt_threshold
      in
      if List.for_all supporting_ok b.supporting then Ok ()
      else Error Weak_supporting_evidence
    end
  end

let pp_rejection fmt rejection =
  Format.pp_print_string fmt
    (match rejection with
    | Bad_signature -> "bad accusation signature"
    | Bad_commitment -> "invalid forwarding commitment"
    | Commitment_mismatch -> "commitment does not name the accused as forwarder"
    | Bad_vote_signature -> "a probe vote carries an invalid signature"
    | Blame_mismatch -> "recomputed blame disagrees with the claimed value"
    | Below_threshold -> "evidence does not reach the guilt threshold"
    | Weak_supporting_evidence -> "a piece of supporting evidence fails verification")
