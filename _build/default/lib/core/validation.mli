(** Validation of peer-advertised routing state (paper Sections 3.1-3.2).

    When a node receives a peer's tomographic snapshot it checks, in order:
    the snapshot's own signature; every entry's freshness stamp (signature,
    holder, recency) against inflation attacks; the jump-table occupancy
    density test against suppression of honest nodes; and Castro's leaf-set
    spacing test. Any failure may trigger a fault accusation against the
    advertiser; the snapshot is archived regardless. *)

module Id = Concilium_overlay.Id
module Leaf_set = Concilium_overlay.Leaf_set
module Freshness = Concilium_overlay.Freshness
module Snapshot = Concilium_tomography.Snapshot
module Pki = Concilium_crypto.Pki

type advertisement = {
  snapshot : Snapshot.t;
  jump_table_occupancy : int;  (** filled slots the peer claims *)
  leaf_set : Leaf_set.t;  (** the peer's advertised leaf set *)
}

type config = {
  gamma_jump : float;  (** slack for the jump-table density test *)
  gamma_leaf : float;  (** slack for Castro's leaf-set spacing test *)
  max_stamp_age : float;  (** seconds before a freshness stamp goes stale *)
}

val default_config : config
(** gamma 1.1 / 1.5, 10-minute stamp lifetime. *)

type failure =
  | Bad_snapshot_signature
  | Stale_or_invalid_stamp of Id.t  (** the offending entry's peer *)
  | Sparse_jump_table of { local : int; advertised : int }
  | Sparse_leaf_set of { local_spacing : float; advertised_spacing : float }

type local_view = {
  own_jump_occupancy : int;
  own_leaf_set : Leaf_set.t;
}

val check :
  Pki.t -> now:float -> config -> local:local_view -> advertisement -> failure list
(** All failures found, in checking order; [] means the advertisement is
    accepted. *)

val pp_failure : Format.formatter -> failure -> unit
