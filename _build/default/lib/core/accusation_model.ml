module Binomial = Concilium_stats.Binomial

let check w m =
  if w <= 0 then invalid_arg "Accusation_model: window must be positive";
  if m < 0 || m > w then invalid_arg "Accusation_model: m outside [0, w]"

let false_positive ~w ~m ~p_good =
  check w m;
  Binomial.survival ~n:w ~p:p_good m

let false_negative ~w ~m ~p_faulty =
  check w m;
  Binomial.cdf ~n:w ~p:p_faulty (m - 1)

type sweep_point = { m : int; false_positive : float; false_negative : float }

let sweep ~w ~p_good ~p_faulty =
  List.init w (fun i ->
      let m = i + 1 in
      {
        m;
        false_positive = false_positive ~w ~m ~p_good;
        false_negative = false_negative ~w ~m ~p_faulty;
      })

let smallest_m_below ~w ~p_good ~p_faulty ~target =
  List.find_map
    (fun point ->
      if point.false_positive < target && point.false_negative < target then Some point.m
      else None)
    (sweep ~w ~p_good ~p_faulty)
