module Sha256 = Concilium_crypto.Sha256
module Pki = Concilium_crypto.Pki

type t = { mutable received : string list; seen : (string, unit) Hashtbl.t }

let create () = { received = []; seen = Hashtbl.create 64 }

let record_received t ~message_id =
  if not (Hashtbl.mem t.seen message_id) then begin
    Hashtbl.replace t.seen message_id ();
    t.received <- message_id :: t.received
  end

let received_count t = Hashtbl.length t.seen

type summary = Counter of int | Hashes of string list

let hash_id message_id = Sha256.hex_digest ("ack|" ^ message_id)

let flush t ~encoding =
  let result =
    match encoding with
    | `Counter -> Counter (received_count t)
    | `Hashes -> Hashes (List.rev_map hash_id t.received)
  in
  t.received <- [];
  Hashtbl.reset t.seen;
  result

let missing ~sent summary =
  match summary with
  | Counter n -> if n = List.length sent then Some [] else None
  | Hashes hashes ->
      let acked = Hashtbl.create 64 in
      List.iter (fun h -> Hashtbl.replace acked h ()) hashes;
      Some (List.filter (fun id -> not (Hashtbl.mem acked (hash_id id))) sent)

let wire_bytes summary =
  Pki.modeled_signature_bytes
  + (match summary with Counter _ -> 4 | Hashes hashes -> 32 * List.length hashes)
