(** Analytic model of jump-table occupancy (paper Section 3.1, Equation 1).

    Slot (i, j) of a table is filled iff at least one of the other N-1
    uniformly random identifiers carries the required (i+1)-digit prefix, so

      Pr(entry filled in row i) = 1 - [1 - (1/v)^(i+1)]^(N-1).

    Occupancy is then Poisson-binomial across the l*v slots, approximated by
    a normal distribution ({!Concilium_stats.Poisson_binomial}). *)

val fill_probability : n:int -> row:int -> float
(** Equation 1 for 0-indexed [row]. Computed in log space so deep rows do
    not underflow. *)

val slot_probabilities : n:int -> float array
(** Per-slot fill probabilities, length {!Routing_table.rows} *
    {!Routing_table.columns} (identical within a row). *)

val model : n:int -> Concilium_stats.Poisson_binomial.t
(** Occupancy-count distribution for an overlay of [n] nodes. *)

val expected_occupancy : n:int -> float
(** Mean number of filled slots, the paper's mu_phi. *)

val expected_routing_entries : n:int -> leaf_set_size:int -> float
(** mu_phi + leaf-set size: the "77 entries in a 100,000-node overlay" of
    Section 4.4. *)

val monte_carlo_occupancy :
  rng:Concilium_util.Prng.t -> n:int -> trials:int -> float array
(** Sampled occupancy *fractions* from [trials] independent overlays: each
    trial draws N random identifiers, builds one node's secure table, and
    counts filled slots. Used to validate the analytic model (Figure 1). *)
