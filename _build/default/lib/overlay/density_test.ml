module Poisson_binomial = Concilium_stats.Poisson_binomial

type verdict = [ `Acceptable | `Suspicious ]

let check ~gamma ~local_occupancy ~peer_occupancy =
  if gamma < 1. then invalid_arg "Density_test.check: gamma must be >= 1";
  if gamma *. float_of_int peer_occupancy < float_of_int local_occupancy then `Suspicious
  else `Acceptable

type rates = { false_positive : float; false_negative : float }

let slot_count = Routing_table.rows * Routing_table.columns

let false_positive_rate ~gamma ~local ~peer =
  if gamma < 1. then invalid_arg "Density_test.false_positive_rate: gamma must be >= 1";
  let acc = ref 0. in
  for d = 0 to slot_count do
    let band = Poisson_binomial.pmf_with_continuity local d in
    let tail = Poisson_binomial.cdf peer (float_of_int d /. gamma) in
    acc := !acc +. (band *. tail)
  done;
  min 1. (max 0. !acc)

let false_negative_rate ~gamma ~local ~advertised =
  if gamma < 1. then invalid_arg "Density_test.false_negative_rate: gamma must be >= 1";
  let acc = ref 0. in
  for d = 0 to slot_count do
    let band = Poisson_binomial.pmf_with_continuity advertised d in
    let pass = 1. -. Poisson_binomial.cdf local (gamma *. float_of_int d) in
    (* Pr(local <= gamma*d), i.e. the advertised table is NOT below the
       local reference once scaled by gamma: the fraud escapes detection. *)
    acc := !acc +. (band *. (1. -. pass))
  done;
  min 1. (max 0. !acc)

type scenario = { n : int; colluding_fraction : float; suppression : bool }

let skewed_n n fraction =
  max 2 (int_of_float (Float.round (float_of_int n *. fraction)))

let rates ~gamma scenario =
  let { n; colluding_fraction = c; suppression } = scenario in
  if c <= 0. || c >= 1. then invalid_arg "Density_test.rates: colluding fraction outside (0,1)";
  let honest_model = Jump_table_model.model ~n in
  let malicious_model = Jump_table_model.model ~n:(skewed_n n c) in
  if not suppression then begin
    (* Without suppression the judge and an honest peer both sample the
       full-overlay occupancy distribution; only the malicious table is
       drawn from the Nc-node distribution. *)
    {
      false_positive = false_positive_rate ~gamma ~local:honest_model ~peer:honest_model;
      false_negative = false_negative_rate ~gamma ~local:honest_model ~advertised:malicious_model;
    }
  end
  else begin
    (* Suppression skew (see DESIGN.md): colluders hide their identifiers
       from the peer being judged, so an honest peer's table looks like an
       overlay of N(1-c) nodes while the judge's reference still reflects N
       (raising false positives); symmetrically the judge's own view can be
       suppressed to N(1-c) while the malicious table still draws from Nc
       (raising false negatives). *)
    let suppressed_model = Jump_table_model.model ~n:(skewed_n n (1. -. c)) in
    {
      false_positive = false_positive_rate ~gamma ~local:honest_model ~peer:suppressed_model;
      false_negative =
        false_negative_rate ~gamma ~local:suppressed_model ~advertised:malicious_model;
    }
  end

let optimal_gamma ~gammas scenario =
  if Array.length gammas = 0 then invalid_arg "Density_test.optimal_gamma: no candidates";
  let best = ref (gammas.(0), rates ~gamma:gammas.(0) scenario) in
  Array.iter
    (fun gamma ->
      let r = rates ~gamma scenario in
      let _, best_r = !best in
      if r.false_positive +. r.false_negative < best_r.false_positive +. best_r.false_negative
      then best := (gamma, r))
    gammas;
  !best
