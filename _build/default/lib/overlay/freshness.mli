(** Signed freshness timestamps (paper Section 3.1).

    A jump-table entry referencing peer H must carry a timestamp recently
    signed by H (piggybacked on H's availability-probe responses). Stale or
    missing stamps let peers reject *inflation attacks*, where a host pads
    its advertised table with identifiers collected from departed nodes. *)

module Signed = Concilium_crypto.Signed
module Pki = Concilium_crypto.Pki

type claim = { holder : Id.t; issued_at : float }

val serialize : claim -> string

type stamp = claim Signed.t

val issue : holder:Id.t -> secret:Pki.secret_key -> public:Pki.public_key -> now:float -> stamp
(** H signs "I, [holder], was alive at [now]". *)

val verify : Pki.t -> stamp -> bool
(** Signature check against the embedded signer key. *)

val is_fresh : now:float -> max_age:float -> stamp -> bool
(** Pure recency check (no signature verification). *)

val validate : Pki.t -> now:float -> max_age:float -> expected_holder:Id.t -> stamp -> bool
(** Full admission check for a table entry: correct holder, valid
    signature, and fresh. *)
