(** Concilium's jump-table density (occupancy) test and its analytic error
    rates (paper Sections 3.1 and 4.1).

    A peer's advertised table is deemed suspicious when
    [gamma * d_peer < d_local] for a slack factor gamma > 1: the peer's
    occupancy is too low to be a plausible sample from the honest occupancy
    distribution. An adversary advertising a table populated only by its
    colluders (a c-fraction of the overlay) produces occupancies distributed
    as a legitimate table in an overlay of N*c nodes, which the test is
    tuned to reject. *)

type verdict = [ `Acceptable | `Suspicious ]

val check : gamma:float -> local_occupancy:int -> peer_occupancy:int -> verdict
(** The runtime test a node applies to an advertised table. *)

type rates = { false_positive : float; false_negative : float }

val false_positive_rate :
  gamma:float ->
  local:Concilium_stats.Poisson_binomial.t ->
  peer:Concilium_stats.Poisson_binomial.t ->
  float
(** Pr(gamma * d_peer < d_local) for an honest peer:
    sum over local occupancies d of Pr(local = d) * Pr(peer < d / gamma),
    with the paper's continuity correction on the band term. *)

val false_negative_rate :
  gamma:float ->
  local:Concilium_stats.Poisson_binomial.t ->
  advertised:Concilium_stats.Poisson_binomial.t ->
  float
(** Pr(gamma * d_peer >= d_local) for a malicious advertised table:
    sum over advertised occupancies d of Pr(adv = d) * Pr(local < gamma*d). *)

type scenario = {
  n : int;  (** overlay size *)
  colluding_fraction : float;  (** c: largest coordinated malicious set *)
  suppression : bool;
      (** whether colluders also run identifier-suppression attacks, skewing
          the honest occupancy distributions (Figure 3); the skew applied is
          described in DESIGN.md *)
}

val rates : gamma:float -> scenario -> rates

val optimal_gamma : gammas:float array -> scenario -> float * rates
(** The gamma among [gammas] minimising false_positive + false_negative,
    with the resulting rates (paper Figures 2(c) and 3(c)). *)
