module Prng = Concilium_util.Prng

type attempt = { via : int; hops : int list; delivered : bool }
type result = { delivered : bool; attempts : attempt list; copies_sent : int }

(* Walk a route and check every intermediate forwarder; endpoints are
   exempt (the sender wants delivery, the root is the judge of receipt). *)
let clean_route ~faulty hops =
  match hops with
  | [] | [ _ ] -> true
  | _ :: rest ->
      let rec interior = function
        | [] | [ _ ] -> true
        | hop :: rest -> (not (faulty hop)) && interior rest
      in
      interior rest

let standard_delivery pastry ~from ~dest ~faulty =
  let hops = Pastry.route pastry ~from ~dest in
  { via = -1; hops; delivered = clean_route ~faulty hops }

let redundant_route pastry ~from ~dest ~faulty =
  let direct = standard_delivery pastry ~from ~dest ~faulty in
  if direct.delivered then { delivered = true; attempts = [ direct ]; copies_sent = 1 }
  else begin
    (* Steer one copy through each leaf-set member: the neighbor forwards
       towards the key with its own routing state, giving path diversity
       precisely where the failed route was compromised. *)
    let leaf_set = (Pastry.node pastry from).Pastry.leaf_set in
    let attempts =
      List.filter_map
        (fun neighbor_id ->
          match Pastry.index_of_id pastry neighbor_id with
          | None -> None
          | Some neighbor ->
              if faulty neighbor then
                (* A faulty first hop eats the copy outright. *)
                Some { via = neighbor; hops = [ from; neighbor ]; delivered = false }
              else begin
                let onward = Pastry.route pastry ~from:neighbor ~dest in
                Some
                  {
                    via = neighbor;
                    hops = from :: onward;
                    delivered = clean_route ~faulty onward;
                  }
              end)
        (Leaf_set.members leaf_set)
    in
    let all = direct :: attempts in
    {
      delivered = List.exists (fun (a : attempt) -> a.delivered) all;
      attempts = all;
      copies_sent = List.length all;
    }
  end

let delivery_probability pastry ~rng ~faulty_fraction ~trials ~mode =
  if faulty_fraction < 0. || faulty_fraction >= 1. then
    invalid_arg "Secure_routing.delivery_probability: fraction outside [0,1)";
  let n = Pastry.node_count pastry in
  let faulty_flags = Array.make n false in
  let delivered = ref 0 and attempted = ref 0 in
  for _ = 1 to trials do
    Array.fill faulty_flags 0 n false;
    let faulty_count = int_of_float (Float.round (faulty_fraction *. float_of_int n)) in
    Array.iter
      (fun v -> faulty_flags.(v) <- true)
      (Prng.sample_without_replacement rng faulty_count n);
    let faulty v = faulty_flags.(v) in
    (* Draw a correct sender and a key owned by a correct root. *)
    let rec correct_sender () =
      let v = Prng.int rng n in
      if faulty_flags.(v) then correct_sender () else v
    in
    let rec correct_key () =
      let dest = Id.random rng in
      if faulty_flags.(Pastry.numerically_closest pastry dest) then correct_key () else dest
    in
    if faulty_count < n then begin
      let from = correct_sender () in
      let dest = correct_key () in
      incr attempted;
      let ok =
        match mode with
        | `Standard -> (standard_delivery pastry ~from ~dest ~faulty).delivered
        | `Redundant -> (redundant_route pastry ~from ~dest ~faulty).delivered
      in
      if ok then incr delivered
    end
  done;
  if !attempted = 0 then 0. else float_of_int !delivered /. float_of_int !attempted
