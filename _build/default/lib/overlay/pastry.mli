(** A whole Pastry overlay, constructed from global knowledge (as a
    simulator may) but routed using only per-node local state.

    Each node holds a leaf set and a jump table; [`Secure] tables obey the
    Castro constraint (see {!Routing_table.build_secure}), [`Standard]
    tables model proximity-style free choice. Message forwarding follows
    the Pastry rule: finish within the leaf set when possible, otherwise
    jump by prefix, otherwise fall back to any known strictly-closer peer. *)

type node = {
  index : int;
  id : Id.t;
  leaf_set : Leaf_set.t;
  table : Routing_table.t;
}

type t

type table_style = Secure | Standard of Concilium_util.Prng.t

val build : ?leaf_half_size:int -> ?style:table_style -> Id.t array -> t
(** Build an overlay over the given identifiers (default [leaf_half_size] 8
    — a 16-member leaf set — and [Secure] tables). Duplicate identifiers are
    rejected. *)

val node_count : t -> int
val node : t -> int -> node
val leaf_half_size : t -> int

val index_of_id : t -> Id.t -> int option
val numerically_closest : t -> Id.t -> int
(** Index of the live node whose identifier minimises ring distance to the
    key — the key's root. *)

val next_hop : t -> from:int -> dest:Id.t -> int option
(** [None] when [from] is already the destination's root. *)

val route : t -> from:int -> dest:Id.t -> int list
(** Node indices visited, starting with [from] and ending at the root of
    [dest]. @raise Failure if forwarding livelocks (cannot happen on
    well-formed overlays; guarded for safety). *)

val routing_peers : t -> int -> int array
(** Distinct node indices appearing in a node's jump table or leaf set —
    the leaves of its tomography tree T_H. *)

val mean_routing_peer_count : t -> float

val add_node : t -> Id.t -> t
(** Overlay maintenance: admit a newly certified identifier. The join is
    incremental — the newcomer builds its own state, ring neighbors refresh
    their leaf sets, and each existing node updates the single constrained
    table slot the newcomer can qualify for — but the result is exactly the
    overlay {!build} would produce from scratch over the enlarged
    membership (property-tested). The new node takes the next index.
    @raise Invalid_argument on a duplicate identifier. *)

val remove_node : t -> Id.t -> t
(** Overlay maintenance: a member departs. Ring neighbors refresh their
    leaf sets and every table slot that referenced the departed node is
    re-resolved against the surviving membership; again equal to a fresh
    {!build}. Node indices above the departed one shift down by one.
    @raise Invalid_argument if the identifier is not a member or only two
    members remain. *)

val route_avoiding : t -> from:int -> dest:Id.t -> avoid:(int -> bool) -> int list option
(** Sanctioned routing (paper Section 3.7: traffic "may simply avoid
    certain overlay paths"): like {!route} but never forwards *through* a
    node satisfying [avoid]; at each hop the best non-avoided known peer
    making progress is chosen instead. [None] when every forwarding choice
    is avoided. The key's root is still allowed to terminate the route —
    refusing delivery to the owner would break DHT consistency (the
    leaf-set-eviction rule of Section 3.7). *)
