(** Pastry jump (routing) tables, standard and secure variants.

    The table has {!Id.digits} rows and {!Id.base} columns. The entry in row
    [i], column [j] holds a peer whose identifier shares an [i]-digit prefix
    with the owner and has [j] as its (i+1)-th digit. In the *secure*
    variant (Castro et al.), that peer must additionally be the live node
    closest to the point p = owner-with-digit-i-replaced-by-j, which strips
    the adversary of placement freedom. *)

type entry = { peer : Id.t; node : int  (** index of the peer in the overlay's node array *) }

type t

val rows : int
val columns : int

val owner : t -> Id.t
val get : t -> row:int -> col:int -> entry option
val set : t -> row:int -> col:int -> entry option -> unit

val create_empty : owner:Id.t -> t

val copy : t -> t
(** Independent copy; mutations to one do not affect the other. *)

val build_secure : owner:Id.t -> sorted:(Id.t * int) array -> t
(** Constrained-table construction from global knowledge: [sorted] is the
    ascending (id, node index) array of all overlay members. The owner
    itself never fills a slot. *)

val build_standard :
  owner:Id.t -> sorted:(Id.t * int) array -> rng:Concilium_util.Prng.t -> t
(** Unconstrained table: any node with the required prefix qualifies; a
    uniformly random qualifying candidate is chosen, modeling
    proximity-driven choices that the adversary can influence. *)

val occupancy : t -> int
(** Number of filled slots. *)

val density : t -> float
(** [occupancy / (rows * columns)]. *)

val next_hop : t -> dest:Id.t -> entry option
(** Jump-table forwarding rule: the entry at row = length of the shared
    prefix between owner and [dest], column = [dest]'s next digit. *)

val entries : t -> (int * int * entry) list
(** All filled slots as (row, col, entry), row-major. *)

val iter : (row:int -> col:int -> entry option -> unit) -> t -> unit
