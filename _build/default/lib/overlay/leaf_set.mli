(** Pastry leaf sets: the [half_size] numerically closest peers on each side
    of the owner's identifier. Leaf sets anchor the last hop of overlay
    routing, and their inter-identifier spacing drives both Castro's density
    check and the Mahajan network-size estimate (paper Sections 2 and 3.1). *)

type t

val build : owner:Id.t -> sorted_ids:Id.t array -> half_size:int -> t
(** [sorted_ids] is the ascending array of all identifiers in the overlay
    (the owner may appear; it is skipped). If fewer than [2 * half_size]
    other identifiers exist, the leaf set simply holds everyone. *)

val of_members : owner:Id.t -> clockwise:Id.t array -> counter_clockwise:Id.t array -> t
(** Assemble a leaf set directly — used to model adversaries advertising
    fabricated (e.g. sparse) leaf sets. Arrays are ordered nearest-first. *)

val owner : t -> Id.t
val members : t -> Id.t list
val size : t -> int
val half_size : t -> int

val clockwise : t -> Id.t array
val counter_clockwise : t -> Id.t array

val mean_spacing : t -> float
(** Average inter-identifier spacing across the leaf set's span of the ring
    (float approximation; spacings are astronomically large). *)

val density : t -> float
(** 1 / {!mean_spacing}: identifiers per unit of ring. *)

val estimate_network_size : t -> float
(** Mahajan et al.: ring size divided by mean spacing. *)

val covers : t -> Id.t -> bool
(** Whether [dest] falls within the leaf set's span, i.e. routing can finish
    with a direct leaf hop. *)

val closest_member : t -> Id.t -> Id.t
(** Member (or the owner itself) with minimal ring distance to [dest]. *)

val spacing_check : gamma:float -> local:t -> peer:t -> [ `Acceptable | `Suspicious ]
(** Castro's leaf-set density test: the peer's advertised leaf set is
    suspicious when its mean spacing exceeds [gamma] times the local one
    (i.e. it is too sparse, hiding honest nodes). *)
