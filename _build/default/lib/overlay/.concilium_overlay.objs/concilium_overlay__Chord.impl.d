lib/overlay/chord.ml: Array Concilium_stats Concilium_util Float Id List Option
