lib/overlay/jump_table_model.mli: Concilium_stats Concilium_util
