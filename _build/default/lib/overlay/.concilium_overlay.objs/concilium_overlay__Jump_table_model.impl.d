lib/overlay/jump_table_model.ml: Array Concilium_stats Concilium_util Float Id Routing_table
