lib/overlay/density_test.mli: Concilium_stats
