lib/overlay/routing_table.ml: Array Concilium_util Id Option
