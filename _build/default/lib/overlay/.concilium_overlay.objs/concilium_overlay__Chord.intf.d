lib/overlay/chord.mli: Concilium_stats Concilium_util Id
