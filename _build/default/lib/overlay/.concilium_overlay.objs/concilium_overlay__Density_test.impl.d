lib/overlay/density_test.ml: Array Concilium_stats Float Jump_table_model Routing_table
