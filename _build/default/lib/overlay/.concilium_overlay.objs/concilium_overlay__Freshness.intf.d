lib/overlay/freshness.mli: Concilium_crypto Id
