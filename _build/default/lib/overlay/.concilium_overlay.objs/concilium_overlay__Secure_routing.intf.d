lib/overlay/secure_routing.mli: Concilium_util Id Pastry
