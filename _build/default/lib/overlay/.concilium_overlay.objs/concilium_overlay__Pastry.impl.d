lib/overlay/pastry.ml: Array Concilium_util Hashtbl Id Leaf_set List Option Routing_table
