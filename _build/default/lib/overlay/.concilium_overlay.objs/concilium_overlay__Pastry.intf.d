lib/overlay/pastry.mli: Concilium_util Id Leaf_set Routing_table
