lib/overlay/routing_table.mli: Concilium_util Id
