lib/overlay/leaf_set.ml: Array Concilium_util Hashtbl Id List
