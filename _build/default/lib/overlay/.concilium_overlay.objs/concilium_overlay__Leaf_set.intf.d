lib/overlay/leaf_set.mli: Id
