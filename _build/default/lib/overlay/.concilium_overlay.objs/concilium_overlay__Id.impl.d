lib/overlay/id.ml: Buffer Bytes Char Concilium_crypto Concilium_util Format Printf String
