lib/overlay/freshness.ml: Concilium_crypto Id Printf
