lib/overlay/secure_routing.ml: Array Concilium_util Float Id Leaf_set List Pastry
