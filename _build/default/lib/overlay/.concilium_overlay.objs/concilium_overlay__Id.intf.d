lib/overlay/id.mli: Concilium_util Format
