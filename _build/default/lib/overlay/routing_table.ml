module Sorted = Concilium_util.Sorted
module Prng = Concilium_util.Prng

type entry = { peer : Id.t; node : int }
type t = { owner : Id.t; slots : entry option array }

let rows = Id.digits
let columns = Id.base

let owner t = t.owner

let slot_index ~row ~col =
  if row < 0 || row >= rows then invalid_arg "Routing_table: row out of range";
  if col < 0 || col >= columns then invalid_arg "Routing_table: column out of range";
  (row * columns) + col

let get t ~row ~col = t.slots.(slot_index ~row ~col)
let set t ~row ~col entry = t.slots.(slot_index ~row ~col) <- entry

let create_empty ~owner = { owner; slots = Array.make (rows * columns) None }
let copy t = { owner = t.owner; slots = Array.copy t.slots }

let compare_fst (a, _) (b, _) = Id.compare a b

(* Candidates for slot (row, col): identifiers in the half-open range
   [prefix(row digits of owner) . col . 00..0, same prefix . col . ff..f].
   Located with two binary searches over the sorted id array. *)
let candidate_range ~owner_id ~row ~col sorted =
  let point = Id.with_digit owner_id row col in
  let lo_bound =
    let rec fill id i = if i >= Id.digits then id else fill (Id.with_digit id i 0) (i + 1) in
    fill point (row + 1)
  in
  let hi_bound =
    let rec fill id i =
      if i >= Id.digits then id else fill (Id.with_digit id i (Id.base - 1)) (i + 1)
    in
    fill point (row + 1)
  in
  let lo = Sorted.lower_bound compare_fst sorted (lo_bound, 0) in
  let hi = Sorted.upper_bound compare_fst sorted (hi_bound, 0) in
  (point, lo, hi)

let closest_in_range ~point ~owner_id sorted lo hi =
  (* The range is sorted, so the minimizer of ring distance to [point] is
     adjacent to point's insertion position (or wraps within the range). *)
  let best = ref None in
  let consider index =
    if index >= lo && index < hi then begin
      let id, node = sorted.(index) in
      if not (Id.equal id owner_id) then begin
        let d = Id.ring_distance id point in
        match !best with
        | Some (_, best_d) when Id.compare d best_d >= 0 -> ()
        | _ -> best := Some ({ peer = id; node }, d)
      end
    end
  in
  let insertion = Sorted.lower_bound compare_fst sorted (point, 0) in
  (* Check a small neighborhood around the insertion point; the owner can
     occupy at most one slot in it, so two on each side suffice. *)
  for index = insertion - 2 to insertion + 2 do
    consider index
  done;
  (* Edges of the range guard against all-neighborhood-out-of-range cases. *)
  consider lo;
  consider (hi - 1);
  Option.map fst !best

(* Slot (i, j) is filled iff some *other* node carries the required
   (i+1)-digit prefix — including j = the owner's own digit, so that
   occupancy follows the paper's Equation 1 with N-1 candidate draws for
   every one of the l*v slots. *)
let build_secure ~owner:owner_id ~sorted =
  let t = create_empty ~owner:owner_id in
  for row = 0 to rows - 1 do
    for col = 0 to columns - 1 do
      let point, lo, hi = candidate_range ~owner_id ~row ~col sorted in
      if hi > lo then set t ~row ~col (closest_in_range ~point ~owner_id sorted lo hi)
    done
  done;
  t

let build_standard ~owner:owner_id ~sorted ~rng =
  let t = create_empty ~owner:owner_id in
  for row = 0 to rows - 1 do
    for col = 0 to columns - 1 do
      let _, lo, hi = candidate_range ~owner_id ~row ~col sorted in
      let width = hi - lo in
      if width > 0 then begin
        let offset = Prng.int rng width in
        let id, node = sorted.(lo + offset) in
        if not (Id.equal id owner_id) then set t ~row ~col (Some { peer = id; node })
        else if width > 1 then begin
          (* Landed on the owner: deterministically take the next candidate
             so a populated slot is not spuriously left empty. *)
          let id, node = sorted.(lo + ((offset + 1) mod width)) in
          set t ~row ~col (Some { peer = id; node })
        end
      end
    done
  done;
  t

let occupancy t =
  Array.fold_left (fun acc slot -> match slot with Some _ -> acc + 1 | None -> acc) 0 t.slots

let density t = float_of_int (occupancy t) /. float_of_int (rows * columns)

let next_hop t ~dest =
  let shared = Id.shared_prefix_length t.owner dest in
  if shared >= rows then None else get t ~row:shared ~col:(Id.digit dest shared)

let entries t =
  let out = ref [] in
  for row = rows - 1 downto 0 do
    for col = columns - 1 downto 0 do
      match get t ~row ~col with
      | Some entry -> out := (row, col, entry) :: !out
      | None -> ()
    done
  done;
  !out

let iter f t =
  for row = 0 to rows - 1 do
    for col = 0 to columns - 1 do
      f ~row ~col (get t ~row ~col)
    done
  done
