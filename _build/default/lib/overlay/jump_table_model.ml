module Prng = Concilium_util.Prng
module Poisson_binomial = Concilium_stats.Poisson_binomial

let fill_probability ~n ~row =
  if n < 1 then invalid_arg "Jump_table_model.fill_probability: n must be >= 1";
  if row < 0 || row >= Routing_table.rows then
    invalid_arg "Jump_table_model.fill_probability: row out of range";
  (* 1 - (1 - v^-(row+1))^(n-1), via expm1/log1p to survive v^-(row+1)
     underflowing the subtraction. *)
  let prefix_probability = float_of_int Id.base ** float_of_int (-(row + 1)) in
  -.Float.expm1 (float_of_int (n - 1) *. Float.log1p (-.prefix_probability))

let slot_probabilities ~n =
  let slots = Routing_table.rows * Routing_table.columns in
  let out = Array.make slots 0. in
  for row = 0 to Routing_table.rows - 1 do
    let p = fill_probability ~n ~row in
    for col = 0 to Routing_table.columns - 1 do
      out.((row * Routing_table.columns) + col) <- p
    done
  done;
  out

let model ~n = Poisson_binomial.of_probabilities (slot_probabilities ~n)
let expected_occupancy ~n = (model ~n).Poisson_binomial.mu_phi

let expected_routing_entries ~n ~leaf_set_size =
  expected_occupancy ~n +. float_of_int leaf_set_size

let monte_carlo_occupancy ~rng ~n ~trials =
  let slots = float_of_int (Routing_table.rows * Routing_table.columns) in
  Array.init trials (fun _ ->
      let ids = Array.init n (fun i -> (Id.random rng, i)) in
      Array.sort (fun (a, _) (b, _) -> Id.compare a b) ids;
      let owner, _ = ids.(Prng.int rng n) in
      let table = Routing_table.build_secure ~owner ~sorted:ids in
      float_of_int (Routing_table.occupancy table) /. slots)
