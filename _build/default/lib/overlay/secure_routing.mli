(** Castro-style secure message forwarding (paper Section 2).

    Concilium's own protocol messages "must always be forwarded using
    secure routing": when the standard (single-path) route fails, the
    sender re-transmits redundantly, sending one copy through each member
    of its leaf set. The copies take diverse first hops, so a message
    survives as long as *some* copy crosses only correct forwarders —
    which holds with high probability while at least ~75% of nodes are
    honest. This module implements both modes over a {!Pastry} overlay and
    measures their delivery probability against a faulty population. *)

type attempt = {
  via : int;  (** the leaf-set member the copy was steered through; -1 = direct *)
  hops : int list;  (** overlay nodes traversed *)
  delivered : bool;
}

type result = {
  delivered : bool;
  attempts : attempt list;
  copies_sent : int;
}

val standard_delivery :
  Pastry.t -> from:int -> dest:Id.t -> faulty:(int -> bool) -> attempt
(** Single-path Pastry routing; fails at the first faulty intermediate
    forwarder (the sender is trusted to emit, the key's root to receive). *)

val redundant_route :
  Pastry.t -> from:int -> dest:Id.t -> faulty:(int -> bool) -> result
(** One copy through each leaf-set member (plus the direct route). The
    message is delivered iff some copy reaches the key's root through
    correct forwarders only. *)

val delivery_probability :
  Pastry.t ->
  rng:Concilium_util.Prng.t ->
  faulty_fraction:float ->
  trials:int ->
  mode:[ `Standard | `Redundant ] ->
  float
(** Monte-Carlo delivery rate with a random [faulty_fraction] of the
    overlay marked faulty per trial. Senders and key roots are always
    drawn from the correct population, isolating *forwarding* robustness. *)
