module Signed = Concilium_crypto.Signed
module Pki = Concilium_crypto.Pki

type claim = { holder : Id.t; issued_at : float }

let serialize claim =
  Printf.sprintf "freshness|%s|%.6f" (Id.to_hex claim.holder) claim.issued_at

type stamp = claim Signed.t

let issue ~holder ~secret ~public ~now =
  Signed.make ~serialize ~signer:public ~secret { holder; issued_at = now }

let verify pki stamp = Signed.check ~serialize pki stamp

let is_fresh ~now ~max_age stamp =
  let claim = Signed.payload stamp in
  claim.issued_at <= now && now -. claim.issued_at <= max_age

let validate pki ~now ~max_age ~expected_holder stamp =
  let claim = Signed.payload stamp in
  Id.equal claim.holder expected_holder && verify pki stamp && is_fresh ~now ~max_age stamp
