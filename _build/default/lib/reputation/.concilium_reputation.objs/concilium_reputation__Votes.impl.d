lib/reputation/votes.ml: Hashtbl List
