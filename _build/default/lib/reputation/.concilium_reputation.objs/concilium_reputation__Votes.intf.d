lib/reputation/votes.mli:
