(** Credence-style decentralized reputation (paper Section 3.6).

    Concilium cannot arbitrate when B simply refuses to issue forwarding
    commitments: no tomographic evidence distinguishes "A never sent the
    message" from "B ignored it". The paper defers such cases to an
    object-reputation system in the style of Credence (Walsh & Sirer): hosts
    cast votes of (no) confidence, and each host weighs a voter by the
    correlation between that voter's history and its own, so colluding liars
    discount themselves. *)

type vote = {
  voter : int;
  subject : int;
  confident : bool;  (** false = vote of no confidence *)
  time : float;
}

type t

val create : unit -> t
val cast : t -> vote -> unit
(** A voter's newest vote on a subject replaces its older one. *)

val vote_count : t -> int

val correlation : t -> a:int -> b:int -> float
(** Agreement between two voters over the subjects both voted on, in
    [-1, 1]; 0 when they share no subjects. *)

val score : t -> observer:int -> subject:int -> float
(** The subject's reputation in the observer's eyes: votes weighted by each
    voter's correlation with the observer (the observer's own vote counts
    with weight 1). Range [-1, 1]; 0 when nothing is known. *)

val poor_peers : t -> observer:int -> threshold:float -> int list
(** Subjects whose score falls below the threshold. *)
