(** Small non-cryptographic hashing helpers (FNV-1a, 64-bit). Cryptographic
    hashing lives in {!Concilium_crypto.Sha256}. *)

val fnv1a : string -> int64
(** 64-bit FNV-1a of a string. *)

val fnv1a_int : int64 -> int64 -> int64
(** [fnv1a_int acc x] folds the 8 bytes of [x] into accumulator [acc];
    seed with {!offset}. *)

val offset : int64
(** The FNV-1a offset basis. *)

val to_positive_int : int64 -> int
(** Truncate a hash to a non-negative OCaml [int], for bucket indices. *)
