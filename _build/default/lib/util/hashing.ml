let offset = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let fnv1a s =
  let h = ref offset in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime) s;
  !h

let fnv1a_int acc x =
  let h = ref acc in
  for shift = 0 to 7 do
    let byte = Int64.logand (Int64.shift_right_logical x (8 * shift)) 0xFFL in
    h := Int64.mul (Int64.logxor !h byte) prime
  done;
  !h

let to_positive_int h = Int64.to_int h land max_int
