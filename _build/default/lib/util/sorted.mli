(** Binary searches over sorted arrays. *)

val lower_bound : ('a -> 'a -> int) -> 'a array -> 'a -> int
(** [lower_bound compare a x] is the first index whose element is [>= x]
    under [compare], or [Array.length a] if all elements are smaller. The
    array must be sorted ascending under [compare]. *)

val upper_bound : ('a -> 'a -> int) -> 'a array -> 'a -> int
(** First index whose element is strictly [> x]. *)

val mem : ('a -> 'a -> int) -> 'a array -> 'a -> bool

val equal_range : ('a -> 'a -> int) -> 'a array -> 'a -> int * int
(** [(lo, hi)] such that elements equal to [x] occupy indices [lo..hi-1]. *)
