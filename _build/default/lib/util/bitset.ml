type t = { words : Bytes.t; capacity : int }

(* Bytes rather than int arrays keeps the structure compact and avoids
   boxing; popcount is done bytewise through a 256-entry table. *)

let popcount_table =
  let table = Bytes.create 256 in
  for i = 0 to 255 do
    let rec bits n = if n = 0 then 0 else (n land 1) + bits (n lsr 1) in
    Bytes.set table i (Char.chr (bits i))
  done;
  table

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7)) land 0xFF))

let cardinal t =
  let total = ref 0 in
  for b = 0 to Bytes.length t.words - 1 do
    total := !total + Char.code (Bytes.get popcount_table (Char.code (Bytes.get t.words b)))
  done;
  !total

let is_empty t =
  let rec scan b = b >= Bytes.length t.words || (Bytes.get t.words b = '\000' && scan (b + 1)) in
  scan 0

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'
let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let union_into ~dst src =
  if dst.capacity <> src.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  for b = 0 to Bytes.length dst.words - 1 do
    let merged = Char.code (Bytes.get dst.words b) lor Char.code (Bytes.get src.words b) in
    Bytes.set dst.words b (Char.chr merged)
  done

let inter_cardinal a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.inter_cardinal: capacity mismatch";
  let total = ref 0 in
  for i = 0 to Bytes.length a.words - 1 do
    let shared = Char.code (Bytes.get a.words i) land Char.code (Bytes.get b.words i) in
    total := !total + Char.code (Bytes.get popcount_table shared)
  done;
  !total

let iter f t =
  for b = 0 to Bytes.length t.words - 1 do
    let byte = Char.code (Bytes.get t.words b) in
    if byte <> 0 then
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then f ((b lsl 3) + bit)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity members =
  let t = create capacity in
  List.iter (add t) members;
  t
