(** Fenwick (binary indexed) tree over floats, supporting point updates,
    prefix sums, and weighted sampling by cumulative weight. The failure
    injector uses it to pick links proportionally to depth-bias weights. *)

type t

val create : int -> t
(** [create n] is a tree over indices [0, n-1], all weights zero. *)

val size : t -> int

val set : t -> int -> float -> unit
(** [set t i w] assigns weight [w] (not adds) to index [i]. Weights must be
    non-negative. *)

val get : t -> int -> float
val total : t -> float

val prefix_sum : t -> int -> float
(** [prefix_sum t i] is the sum of weights at indices [0..i]. *)

val find_by_weight : t -> float -> int
(** [find_by_weight t x] returns the smallest index [i] such that
    [prefix_sum t i > x]. Precondition: [0 <= x < total t]. Sampling a
    uniform [x] yields an index with probability proportional to its
    weight. *)
