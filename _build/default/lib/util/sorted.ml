let search predicate a =
  (* Invariant: predicate holds for all indices >= hi, fails below lo. *)
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if predicate a.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let lower_bound compare a x = search (fun y -> compare y x >= 0) a
let upper_bound compare a x = search (fun y -> compare y x > 0) a

let mem compare a x =
  let i = lower_bound compare a x in
  i < Array.length a && compare a.(i) x = 0

let equal_range compare a x = (lower_bound compare a x, upper_bound compare a x)
