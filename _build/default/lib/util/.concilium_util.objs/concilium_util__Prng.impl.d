lib/util/prng.ml: Array Char Float Hashtbl Int64 String
