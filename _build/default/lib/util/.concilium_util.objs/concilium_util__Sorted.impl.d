lib/util/sorted.ml: Array
