lib/util/heap.mli:
