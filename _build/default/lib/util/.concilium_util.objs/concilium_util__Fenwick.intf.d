lib/util/fenwick.mli:
