lib/util/hashing.mli:
