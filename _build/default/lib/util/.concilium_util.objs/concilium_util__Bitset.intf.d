lib/util/bitset.mli:
