lib/util/bitset.ml: Bytes Char List
