lib/util/ring_buffer.mli:
