lib/util/ring_buffer.ml: Array List
