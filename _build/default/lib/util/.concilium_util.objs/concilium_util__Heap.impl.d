lib/util/heap.ml: Array List
