lib/util/fenwick.ml: Array
