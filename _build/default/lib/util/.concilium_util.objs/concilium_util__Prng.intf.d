lib/util/prng.mli:
