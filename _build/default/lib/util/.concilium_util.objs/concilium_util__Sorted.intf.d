lib/util/sorted.mli:
