(** Bounded FIFO buffer that discards the oldest element when full.
    Concilium's sliding verdict windows (the last [w] verdicts issued for a
    peer, paper Section 3.4) are ring buffers. *)

type 'a t

val create : int -> 'a t
(** [create w] holds at most [w] elements. [w] must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool

val push : 'a t -> 'a -> 'a option
(** Append a newest element; returns the evicted oldest element if the
    buffer was full. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold oldest-to-newest. *)

val count : ('a -> bool) -> 'a t -> int
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
