module Prng = Concilium_util.Prng

type t = int64

let generator ~seed =
  let rng = Prng.of_seed seed in
  fun () -> Prng.int64 rng

let equal = Int64.equal
let to_string = Printf.sprintf "%016Lx"
let wire_bytes = 2
