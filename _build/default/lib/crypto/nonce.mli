(** Probe nonces (paper Section 3.3): a leaf cannot acknowledge a probe it
    never received because it cannot guess the nonce. *)

type t

val generator : seed:int64 -> unit -> t
(** A fresh nonce source; each call of the returned thunk yields a new
    unpredictable nonce. *)

val equal : t -> t -> bool
val to_string : t -> string

val wire_bytes : int
(** Paper Section 4.4 budgets 16 bits per probe nonce. *)
