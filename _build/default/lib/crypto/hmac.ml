let block_size = 64

let sha256 ~key message =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  let xor_with byte =
    String.init block_size (fun i -> Char.chr (Char.code (Bytes.get padded i) lxor byte))
  in
  let inner = Sha256.digest (xor_with 0x36 ^ message) in
  Sha256.digest (xor_with 0x5C ^ inner)

let sha256_hex ~key message =
  let raw = sha256 ~key message in
  let buffer = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buffer (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buffer
