type 'a t = { payload : 'a; signer : Pki.public_key; signature : Pki.signature }

let domain = "concilium-signed-v1|"

let make ~serialize ~signer ~secret payload =
  { payload; signer; signature = Pki.sign secret (domain ^ serialize payload) }

let check ~serialize pki t = Pki.verify pki t.signer (domain ^ serialize t.payload) t.signature

let forge ~signer ~fake_signature payload = { payload; signer; signature = fake_signature }

let payload t = t.payload
let signer t = t.signer
