(** HMAC-SHA256 (RFC 2104), checked against RFC 4231 test vectors. *)

val sha256 : key:string -> string -> string
(** 32-byte raw MAC. *)

val sha256_hex : key:string -> string -> string
