(** SHA-256 (FIPS 180-4), implemented from scratch and checked against the
    official test vectors in the test suite. *)

val digest : string -> string
(** 32-byte raw digest. *)

val hex_digest : string -> string
(** Lowercase hex rendering of {!digest}. *)

val digest_list : string list -> string
(** Digest of the length-prefixed concatenation of the inputs. Unlike plain
    concatenation this is unambiguous: [["ab"; "c"]] and [["a"; "bc"]] hash
    differently, so composite protocol messages can be hashed field-wise. *)
