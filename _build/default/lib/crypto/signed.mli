(** Generic signed envelope: a payload plus the signer's key and signature.
    Tomographic snapshots, forwarding commitments, verdicts and accusations
    are all shipped inside these. *)

type 'a t = private { payload : 'a; signer : Pki.public_key; signature : Pki.signature }

val make : serialize:('a -> string) -> signer:Pki.public_key -> secret:Pki.secret_key -> 'a -> 'a t

val check : serialize:('a -> string) -> Pki.t -> 'a t -> bool
(** Re-serialize the payload and verify the signature against the embedded
    signer key. *)

val forge : signer:Pki.public_key -> fake_signature:Pki.signature -> 'a -> 'a t
(** Build an envelope with an arbitrary (invalid) signature — used by the
    test suite and attack scenarios to model adversaries attempting
    spoofing. *)

val payload : 'a t -> 'a
val signer : 'a t -> Pki.public_key
