lib/crypto/pki.ml: Concilium_util Hashtbl Hmac List Printf Sha256 String
