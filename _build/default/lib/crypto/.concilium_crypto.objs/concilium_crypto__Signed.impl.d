lib/crypto/signed.ml: Pki
