lib/crypto/hmac.ml: Buffer Bytes Char Printf Sha256 String
