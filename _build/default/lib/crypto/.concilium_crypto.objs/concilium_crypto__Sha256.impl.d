lib/crypto/sha256.ml: Array Buffer Bytes Char Int64 List Printf String
