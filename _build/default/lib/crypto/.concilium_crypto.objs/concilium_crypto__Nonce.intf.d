lib/crypto/nonce.mli:
