lib/crypto/signed.mli: Pki
