lib/crypto/pki.mli:
