lib/crypto/nonce.ml: Concilium_util Int64 Printf
