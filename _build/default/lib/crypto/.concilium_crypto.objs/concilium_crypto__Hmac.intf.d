lib/crypto/hmac.mli:
