module Graph = Concilium_topology.Graph
module Generate = Concilium_topology.Generate
module Routes = Concilium_topology.Routes
module Prng = Concilium_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- Graph ---------- *)

let diamond () =
  (* 0-1, 0-2, 1-3, 2-3: two equal-length paths from 0 to 3. *)
  let b = Graph.Builder.create 4 in
  Graph.Builder.add_link b 0 1;
  Graph.Builder.add_link b 0 2;
  Graph.Builder.add_link b 1 3;
  Graph.Builder.add_link b 2 3;
  Graph.build b

let test_graph_basic () =
  let g = diamond () in
  check Alcotest.int "nodes" 4 (Graph.node_count g);
  check Alcotest.int "links" 4 (Graph.link_count g);
  check Alcotest.int "degree 0" 2 (Graph.degree g 0);
  check (Alcotest.float 1e-9) "mean degree" 2. (Graph.mean_degree g);
  check Alcotest.bool "connected" true (Graph.is_connected g)

let test_graph_dedup_and_self_loops () =
  let b = Graph.Builder.create 3 in
  Graph.Builder.add_link b 0 1;
  Graph.Builder.add_link b 1 0;
  Graph.Builder.add_link b 2 2;
  check Alcotest.int "deduped" 1 (Graph.Builder.link_count b);
  let g = Graph.build b in
  check Alcotest.int "one link" 1 (Graph.link_count g);
  check Alcotest.bool "disconnected" false (Graph.is_connected g)

let test_graph_link_lookup () =
  let g = diamond () in
  (match Graph.link_between g 0 1 with
  | Some link ->
      let lo, hi = Graph.link_endpoints g link in
      check (Alcotest.pair Alcotest.int Alcotest.int) "endpoints" (0, 1) (lo, hi)
  | None -> Alcotest.fail "expected link 0-1");
  check (Alcotest.option Alcotest.int) "absent link" None (Graph.link_between g 1 2)

let test_graph_end_hosts () =
  let b = Graph.Builder.create 4 in
  Graph.Builder.add_link b 0 1;
  Graph.Builder.add_link b 1 2;
  Graph.Builder.add_link b 1 3;
  let g = Graph.build b in
  check (Alcotest.array Alcotest.int) "degree-1 nodes" [| 0; 2; 3 |] (Graph.end_hosts g)

let test_graph_add_node () =
  let b = Graph.Builder.create 1 in
  let fresh = Graph.Builder.add_node b in
  check Alcotest.int "appended id" 1 fresh;
  Graph.Builder.add_link b 0 fresh;
  let g = Graph.build b in
  check Alcotest.int "grown" 2 (Graph.node_count g)

(* ---------- Generate ---------- *)

let test_generate_tiny_invariants () =
  let world = Generate.generate (Generate.tiny ~seed:3L) in
  let g = world.Generate.graph in
  check Alcotest.bool "connected" true (Graph.is_connected g);
  (* Every End_host node has degree exactly 1; every degree-1 node at tiny
     scale is an end host. *)
  for node = 0 to Graph.node_count g - 1 do
    match Generate.class_of world node with
    | Generate.End_host ->
        check Alcotest.int (Printf.sprintf "end host %d degree" node) 1 (Graph.degree g node)
    | Generate.Transit | Generate.Stub -> ()
  done;
  (* Every End_host is degree-1, so it appears in Graph.end_hosts; the
     converse need not hold (a leaf stub router is also degree-1). *)
  check Alcotest.bool "end hosts within degree-1 census" true
    (Array.length (Graph.end_hosts g) >= Generate.end_host_count world)

let test_generate_deterministic () =
  let a = Generate.generate (Generate.tiny ~seed:5L) in
  let b = Generate.generate (Generate.tiny ~seed:5L) in
  check Alcotest.int "same nodes" (Graph.node_count a.Generate.graph)
    (Graph.node_count b.Generate.graph);
  check Alcotest.int "same links" (Graph.link_count a.Generate.graph)
    (Graph.link_count b.Generate.graph);
  let c = Generate.generate (Generate.tiny ~seed:6L) in
  check Alcotest.bool "different seed differs" true
    (Graph.link_count c.Generate.graph <> Graph.link_count a.Generate.graph
    || Graph.end_hosts c.Generate.graph <> Graph.end_hosts a.Generate.graph)

let test_generate_small_scale_population () =
  let params = Generate.small_scale ~seed:1L in
  let world = Generate.generate params in
  let expected_hosts =
    params.Generate.transit_domains * params.Generate.routers_per_transit
    * params.Generate.stub_domains_per_transit_router * params.Generate.end_hosts_per_stub
  in
  check Alcotest.int "end hosts" expected_hosts (Generate.end_host_count world);
  check Alcotest.bool "connected" true (Graph.is_connected world.Generate.graph)

(* ---------- Routes ---------- *)

let test_bfs_shortest_on_diamond () =
  let g = diamond () in
  match Routes.shortest_path g ~source:0 ~target:3 with
  | None -> Alcotest.fail "expected a path"
  | Some path ->
      check Alcotest.int "hop count" 2 (Routes.hop_count path);
      check Alcotest.int "starts at source" 0 path.Routes.nodes.(0);
      check Alcotest.int "ends at target" 3 path.Routes.nodes.(2)

let test_bfs_unreachable () =
  let b = Graph.Builder.create 3 in
  Graph.Builder.add_link b 0 1;
  let g = Graph.build b in
  check Alcotest.bool "unreachable" true (Routes.shortest_path g ~source:0 ~target:2 = None)

let test_bfs_self_path () =
  let g = diamond () in
  match Routes.shortest_path g ~source:1 ~target:1 with
  | None -> Alcotest.fail "self path"
  | Some path -> check Alcotest.int "zero hops" 0 (Routes.hop_count path)

let test_link_depth_fraction () =
  let g = diamond () in
  let path = Option.get (Routes.shortest_path g ~source:0 ~target:3) in
  check (Alcotest.float 1e-9) "first link" 0. (Routes.link_depth_fraction path 0);
  check (Alcotest.float 1e-9) "last link" 1. (Routes.link_depth_fraction path 1)

let prop_bfs_paths_consistent =
  QCheck.Test.make ~name:"BFS paths are connected, minimal, and well-formed" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let world = Generate.generate (Generate.tiny ~seed:(Int64.of_int seed)) in
      let g = world.Generate.graph in
      let rng = Prng.of_seed (Int64.of_int (seed + 1)) in
      let source = Prng.int rng (Graph.node_count g) in
      let targets = Array.init 5 (fun _ -> Prng.int rng (Graph.node_count g)) in
      let paths = Routes.shortest_paths g ~source ~targets in
      Array.for_all
        (function
          | None -> false (* tiny worlds are connected *)
          | Some path ->
              let nodes = path.Routes.nodes and links = path.Routes.links in
              Array.length nodes = Array.length links + 1
              && nodes.(0) = source
              && Array.for_all (fun x -> x) (Array.mapi
                   (fun i link ->
                     let lo, hi = Graph.link_endpoints g link in
                     (lo = nodes.(i) && hi = nodes.(i + 1))
                     || (hi = nodes.(i) && lo = nodes.(i + 1)))
                   links))
        paths)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"BFS distances obey the triangle inequality" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let world = Generate.generate (Generate.tiny ~seed:(Int64.of_int seed)) in
      let g = world.Generate.graph in
      let rng = Prng.of_seed (Int64.of_int (seed + 7)) in
      let pick () = Prng.int rng (Graph.node_count g) in
      let a = pick () and b = pick () and c = pick () in
      let distance x y =
        match Routes.shortest_path g ~source:x ~target:y with
        | Some p -> Routes.hop_count p
        | None -> max_int
      in
      distance a c <= distance a b + distance b c)


(* ---------- Serialize ---------- *)

module Serialize = Concilium_topology.Serialize

let test_serialize_roundtrip () =
  let world = Generate.generate (Generate.tiny ~seed:44L) in
  let path = Filename.temp_file "concilium-topo" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save_world ~path world;
      match Serialize.load_world ~path with
      | Error message -> Alcotest.failf "load failed: %s" message
      | Ok loaded ->
          check Alcotest.int "nodes" (Graph.node_count world.Generate.graph)
            (Graph.node_count loaded.Generate.graph);
          check Alcotest.int "links" (Graph.link_count world.Generate.graph)
            (Graph.link_count loaded.Generate.graph);
          check (Alcotest.array Alcotest.int) "end hosts"
            (Graph.end_hosts world.Generate.graph)
            (Graph.end_hosts loaded.Generate.graph))

let test_serialize_rejects_garbage () =
  let path = Filename.temp_file "concilium-topo" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOT-A-TOPOLOGY-FILE-AT-ALL";
      close_out oc;
      match Serialize.load_world ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage accepted")

let suites =
  [
    ( "topology.graph",
      [
        Alcotest.test_case "basics" `Quick test_graph_basic;
        Alcotest.test_case "dedup and self-loops" `Quick test_graph_dedup_and_self_loops;
        Alcotest.test_case "link lookup" `Quick test_graph_link_lookup;
        Alcotest.test_case "end hosts" `Quick test_graph_end_hosts;
        Alcotest.test_case "add node" `Quick test_graph_add_node;
      ] );
    ( "topology.generate",
      [
        Alcotest.test_case "tiny invariants" `Quick test_generate_tiny_invariants;
        Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
        Alcotest.test_case "small-scale population" `Quick test_generate_small_scale_population;
      ] );
    ( "topology.serialize",
      [
        Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
      ] );
    ( "topology.routes",
      [
        Alcotest.test_case "diamond shortest path" `Quick test_bfs_shortest_on_diamond;
        Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
        Alcotest.test_case "self path" `Quick test_bfs_self_path;
        Alcotest.test_case "link depth fraction" `Quick test_link_depth_fraction;
        qtest prop_bfs_paths_consistent;
        qtest prop_bfs_triangle_inequality;
      ] );
  ]
