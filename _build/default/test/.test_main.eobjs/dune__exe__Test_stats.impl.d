test/test_stats.ml: Alcotest Array Concilium_stats Concilium_util Float List QCheck QCheck_alcotest
