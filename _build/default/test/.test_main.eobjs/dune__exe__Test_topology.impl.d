test/test_topology.ml: Alcotest Array Concilium_topology Concilium_util Filename Fun Int64 Option Printf QCheck QCheck_alcotest Sys
