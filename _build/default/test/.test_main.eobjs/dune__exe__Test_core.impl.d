test/test_core.ml: Alcotest Array Concilium_core Concilium_crypto Concilium_overlay Concilium_tomography Concilium_util Hashtbl Lazy List Printf QCheck QCheck_alcotest
