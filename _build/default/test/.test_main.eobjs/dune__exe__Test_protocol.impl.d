test/test_protocol.ml: Alcotest Array Concilium_core Concilium_crypto Concilium_netsim Concilium_overlay Concilium_topology Concilium_util Fun Lazy List Option Printf String
