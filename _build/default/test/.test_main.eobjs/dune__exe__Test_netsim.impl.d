test/test_netsim.ml: Alcotest Array Concilium_netsim Concilium_topology Concilium_util Fun List Option Printf QCheck QCheck_alcotest
