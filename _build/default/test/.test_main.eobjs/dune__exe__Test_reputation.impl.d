test/test_reputation.ml: Alcotest Concilium_reputation List Printf
