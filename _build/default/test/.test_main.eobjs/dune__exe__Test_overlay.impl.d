test/test_overlay.ml: Alcotest Array Concilium_crypto Concilium_overlay Concilium_stats Concilium_util Fun Int64 List Printf QCheck QCheck_alcotest
