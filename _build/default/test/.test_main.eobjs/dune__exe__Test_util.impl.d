test/test_util.ml: Alcotest Array Concilium_util Fun Hashtbl Int Int64 List QCheck QCheck_alcotest
