test/test_crypto.ml: Alcotest Concilium_crypto Gen List QCheck QCheck_alcotest String
