module Special = Concilium_stats.Special
module Normal = Concilium_stats.Normal
module Binomial = Concilium_stats.Binomial
module Beta = Concilium_stats.Beta
module Poisson_binomial = Concilium_stats.Poisson_binomial
module Descriptive = Concilium_stats.Descriptive
module Histogram = Concilium_stats.Histogram
module Hypothesis = Concilium_stats.Hypothesis
module Prng = Concilium_util.Prng

let check = Alcotest.check
let checkf tolerance = Alcotest.check (Alcotest.float tolerance)
let qtest = QCheck_alcotest.to_alcotest

(* ---------- Special functions ---------- *)

let test_log_gamma () =
  (* Gamma(n) = (n-1)! *)
  checkf 1e-10 "gamma(1)" 0. (Special.log_gamma 1.);
  checkf 1e-10 "gamma(2)" 0. (Special.log_gamma 2.);
  checkf 1e-9 "gamma(5)" (log 24.) (Special.log_gamma 5.);
  checkf 1e-9 "gamma(0.5)" (log (sqrt Float.pi)) (Special.log_gamma 0.5);
  (* Cross-checked with C lgamma(10.3). *)
  checkf 1e-5 "gamma(10.3)" 13.482037 (Special.log_gamma 10.3)

let test_log_binomial () =
  checkf 1e-9 "C(5,2)" (log 10.) (Special.log_binomial_coefficient 5 2);
  checkf 1e-6 "C(100,50)" 66.7838417 (Special.log_binomial_coefficient 100 50);
  check (Alcotest.float 0.) "C(5,6)" neg_infinity (Special.log_binomial_coefficient 5 6);
  checkf 1e-12 "C(7,0)" 0. (Special.log_binomial_coefficient 7 0)

let test_erf () =
  checkf 1e-6 "erf(0)" 0. (Special.erf 0.);
  checkf 1e-6 "erf(1)" 0.8427008 (Special.erf 1.);
  checkf 1e-6 "erf(-1)" (-0.8427008) (Special.erf (-1.));
  checkf 1e-6 "erf(2)" 0.9953223 (Special.erf 2.);
  checkf 1e-6 "erfc(1)" 0.1572992 (Special.erfc 1.)

(* ---------- Normal ---------- *)

let test_normal_cdf () =
  checkf 1e-7 "cdf(0)" 0.5 (Normal.standard_cdf 0.);
  checkf 1e-5 "cdf(1.96)" 0.9750021 (Normal.standard_cdf 1.96);
  checkf 1e-5 "cdf(-1.96)" 0.0249979 (Normal.standard_cdf (-1.96));
  checkf 1e-5 "shifted" 0.8413447 (Normal.cdf ~mu:10. ~sigma:2. 12.)

let test_normal_quantile_inverts_cdf () =
  List.iter
    (fun p -> checkf 1e-4 "roundtrip" p (Normal.standard_cdf (Normal.standard_quantile p)))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_normal_pdf () =
  checkf 1e-7 "pdf(0)" 0.3989423 (Normal.pdf ~mu:0. ~sigma:1. 0.);
  checkf 1e-7 "pdf symmetric" (Normal.pdf ~mu:0. ~sigma:1. 1.) (Normal.pdf ~mu:0. ~sigma:1. (-1.))

(* ---------- Binomial ---------- *)

let test_binomial_pmf () =
  checkf 1e-9 "pmf(10,0.5,5)" 0.24609375 (Binomial.pmf ~n:10 ~p:0.5 5);
  checkf 1e-9 "pmf(3,0.2,0)" 0.512 (Binomial.pmf ~n:3 ~p:0.2 0);
  checkf 1e-12 "degenerate p=0" 1. (Binomial.pmf ~n:5 ~p:0. 0);
  checkf 1e-12 "degenerate p=1" 1. (Binomial.pmf ~n:5 ~p:1. 5)

let test_binomial_cdf_survival () =
  checkf 1e-9 "cdf + survival = 1 + pmf" 1.
    (Binomial.cdf ~n:20 ~p:0.3 7 +. Binomial.survival ~n:20 ~p:0.3 8);
  checkf 1e-9 "cdf full" 1. (Binomial.cdf ~n:12 ~p:0.7 12);
  checkf 1e-9 "survival 0" 1. (Binomial.survival ~n:12 ~p:0.7 0)

let prop_binomial_pmf_sums_to_one =
  QCheck.Test.make ~name:"binomial pmf sums to 1" ~count:50
    QCheck.(pair (int_range 1 40) (float_bound_inclusive 1.))
    (fun (n, p) ->
      let total = ref 0. in
      for k = 0 to n do
        total := !total +. Binomial.pmf ~n ~p k
      done;
      abs_float (!total -. 1.) < 1e-9)

(* ---------- Beta ---------- *)

let test_beta_mean_johnk () =
  (* The paper's Beta(0.9, 0.6): mean must be alpha/(alpha+beta) = 0.6. *)
  let rng = Prng.of_seed 31L in
  let n = 40_000 in
  let total = ref 0. in
  for _ = 1 to n do
    let x = Beta.sample rng ~alpha:0.9 ~beta:0.6 in
    assert (x >= 0. && x <= 1.);
    total := !total +. x
  done;
  checkf 0.01 "mean" 0.6 (!total /. float_of_int n)

let test_beta_mean_gamma_path () =
  let rng = Prng.of_seed 32L in
  let n = 40_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Beta.sample rng ~alpha:2.5 ~beta:5.
  done;
  checkf 0.01 "mean" (2.5 /. 7.5) (!total /. float_of_int n)

let test_beta_pdf () =
  (* Beta(2,2): pdf(x) = 6x(1-x). *)
  checkf 1e-9 "pdf at 0.5" 1.5 (Beta.pdf ~alpha:2. ~beta:2. 0.5);
  checkf 1e-9 "pdf outside" 0. (Beta.pdf ~alpha:2. ~beta:2. 1.5)

(* ---------- Poisson binomial ---------- *)

let test_poisson_binomial_homogeneous_matches_binomial () =
  (* With identical p the Poisson binomial IS Binomial(n, p); the normal
     approximation must match its exact mean and variance. *)
  let n = 200 and p = 0.3 in
  let model = Poisson_binomial.of_probabilities (Array.make n p) in
  checkf 1e-9 "mean" (float_of_int n *. p) model.Poisson_binomial.mu_phi;
  checkf 1e-6 "std" (sqrt (float_of_int n *. p *. (1. -. p))) model.Poisson_binomial.sigma_phi

let test_poisson_binomial_heterogeneous_variance () =
  let probabilities = [| 0.1; 0.9; 0.5; 0.2; 0.7 |] in
  let model = Poisson_binomial.of_probabilities probabilities in
  let exact_var = Array.fold_left (fun acc p -> acc +. (p *. (1. -. p))) 0. probabilities in
  checkf 1e-9 "variance identity" exact_var
    (model.Poisson_binomial.sigma_phi *. model.Poisson_binomial.sigma_phi)

let test_poisson_binomial_cdf_monotone () =
  let model = Poisson_binomial.of_probabilities (Array.make 50 0.4) in
  let previous = ref neg_infinity in
  for d = 0 to 50 do
    let value = Poisson_binomial.cdf model (float_of_int d) in
    assert (value >= !previous);
    previous := value
  done;
  check Alcotest.bool "cdf in range" true (!previous <= 1.)

let test_poisson_binomial_pmf_band () =
  let model = Poisson_binomial.of_probabilities (Array.make 100 0.5) in
  let total = ref 0. in
  for d = 0 to 100 do
    total := !total +. Poisson_binomial.pmf_with_continuity model d
  done;
  checkf 0.01 "bands sum to ~1" 1. !total

(* ---------- Descriptive ---------- *)

let test_descriptive_summary () =
  let s = Descriptive.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  checkf 1e-9 "mean" 5. s.Descriptive.mean;
  checkf 1e-9 "stddev" 2. s.Descriptive.stddev;
  checkf 1e-9 "min" 2. s.Descriptive.minimum;
  checkf 1e-9 "max" 9. s.Descriptive.maximum

let test_descriptive_quantile () =
  let samples = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf 1e-9 "median" 3. (Descriptive.quantile samples 0.5);
  checkf 1e-9 "q0" 1. (Descriptive.quantile samples 0.);
  checkf 1e-9 "q1" 5. (Descriptive.quantile samples 1.);
  checkf 1e-9 "q0.25" 2. (Descriptive.quantile samples 0.25)

let test_online_matches_batch () =
  let samples = [| 3.1; -2.; 0.5; 8.; 4.4; -1.1 |] in
  let online = Descriptive.Online.create () in
  Array.iter (Descriptive.Online.add online) samples;
  let batch = Descriptive.summarize samples in
  checkf 1e-9 "mean" batch.Descriptive.mean (Descriptive.Online.mean online);
  checkf 1e-9 "variance" batch.Descriptive.variance (Descriptive.Online.variance online)

(* ---------- Histogram ---------- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  List.iter (Histogram.add h) [ 0.1; 0.3; 0.3; 0.9; 1.5; -0.2 ];
  check (Alcotest.array Alcotest.int) "counts" [| 2; 2; 0; 2 |] (Histogram.counts h);
  check Alcotest.int "total" 6 (Histogram.total h);
  let pdf = Histogram.pdf h in
  let integral = Array.fold_left (fun acc d -> acc +. (d *. 0.25)) 0. pdf in
  checkf 1e-9 "pdf integrates to 1" 1. integral

let test_histogram_fraction_at_least () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:10 in
  List.iter (Histogram.add h) [ 0.05; 0.15; 0.55; 0.95 ];
  checkf 1e-9 "fraction >= 0.5" 0.5 (Histogram.fraction_at_least h 0.5)

(* ---------- Hypothesis ---------- *)

let test_two_proportion_z () =
  let z = Hypothesis.two_proportion_z ~successes1:80 ~trials1:100 ~successes2:50 ~trials2:100 in
  check Alcotest.bool "sign" true (z > 0.);
  (* pooled p = 0.65, se = sqrt(0.65*0.35*0.02), z = 0.3/se. *)
  checkf 0.01 "magnitude" 4.4475 z;
  checkf 1e-9 "identical proportions" 0.
    (Hypothesis.two_proportion_z ~successes1:50 ~trials1:100 ~successes2:50 ~trials2:100)

let test_one_proportion_z () =
  let z = Hypothesis.one_proportion_z ~successes:30 ~trials:100 ~p0:0.5 in
  checkf 0.001 "z" (-4.) z;
  let p = Hypothesis.one_proportion_p_value_upper ~successes:70 ~trials:100 ~p0:0.5 in
  check Alcotest.bool "significant" true (p < 0.01)

let suites =
  [
    ( "stats.special",
      [
        Alcotest.test_case "log_gamma" `Quick test_log_gamma;
        Alcotest.test_case "log binomial coefficient" `Quick test_log_binomial;
        Alcotest.test_case "erf" `Quick test_erf;
      ] );
    ( "stats.normal",
      [
        Alcotest.test_case "cdf values" `Quick test_normal_cdf;
        Alcotest.test_case "quantile inverts cdf" `Quick test_normal_quantile_inverts_cdf;
        Alcotest.test_case "pdf" `Quick test_normal_pdf;
      ] );
    ( "stats.binomial",
      [
        Alcotest.test_case "pmf values" `Quick test_binomial_pmf;
        Alcotest.test_case "cdf/survival duality" `Quick test_binomial_cdf_survival;
        qtest prop_binomial_pmf_sums_to_one;
      ] );
    ( "stats.beta",
      [
        Alcotest.test_case "Johnk sampler mean (paper's shape)" `Quick test_beta_mean_johnk;
        Alcotest.test_case "gamma-path sampler mean" `Quick test_beta_mean_gamma_path;
        Alcotest.test_case "pdf" `Quick test_beta_pdf;
      ] );
    ( "stats.poisson_binomial",
      [
        Alcotest.test_case "homogeneous = binomial" `Quick
          test_poisson_binomial_homogeneous_matches_binomial;
        Alcotest.test_case "variance identity" `Quick test_poisson_binomial_heterogeneous_variance;
        Alcotest.test_case "cdf monotone" `Quick test_poisson_binomial_cdf_monotone;
        Alcotest.test_case "continuity bands" `Quick test_poisson_binomial_pmf_band;
      ] );
    ( "stats.descriptive",
      [
        Alcotest.test_case "summary" `Quick test_descriptive_summary;
        Alcotest.test_case "quantiles" `Quick test_descriptive_quantile;
        Alcotest.test_case "online matches batch" `Quick test_online_matches_batch;
      ] );
    ( "stats.histogram",
      [
        Alcotest.test_case "binning and pdf" `Quick test_histogram_binning;
        Alcotest.test_case "fraction_at_least" `Quick test_histogram_fraction_at_least;
      ] );
    ( "stats.hypothesis",
      [
        Alcotest.test_case "two-proportion z" `Quick test_two_proportion_z;
        Alcotest.test_case "one-proportion z" `Quick test_one_proportion_z;
      ] );
  ]
