module Votes = Concilium_reputation.Votes

let check = Alcotest.check

let vote voter subject confident = { Votes.voter; subject; confident; time = 0. }

let test_correlation () =
  let t = Votes.create () in
  (* Voters 1 and 2 agree on subjects 10, 11; disagree on 12. *)
  List.iter (Votes.cast t)
    [
      vote 1 10 true; vote 2 10 true;
      vote 1 11 false; vote 2 11 false;
      vote 1 12 true; vote 2 12 false;
    ];
  check (Alcotest.float 1e-9) "2 agreements, 1 disagreement" (1. /. 3.)
    (Votes.correlation t ~a:1 ~b:2);
  check (Alcotest.float 1e-9) "self" 1. (Votes.correlation t ~a:1 ~b:1);
  check (Alcotest.float 1e-9) "no overlap" 0. (Votes.correlation t ~a:1 ~b:99)

let test_newest_vote_wins () =
  let t = Votes.create () in
  Votes.cast t (vote 1 10 true);
  Votes.cast t (vote 1 10 false);
  check Alcotest.int "one vote" 1 (Votes.vote_count t);
  Votes.cast t (vote 2 10 false);
  Votes.cast t (vote 2 11 false);
  Votes.cast t (vote 1 11 false);
  (* Voters 1 and 2 now agree on both subjects. *)
  check (Alcotest.float 1e-9) "perfect agreement" 1. (Votes.correlation t ~a:1 ~b:2)

let test_colluders_discount_themselves () =
  let t = Votes.create () in
  (* Honest voters 0..4 vote no-confidence in subject 100, confidence in
     subjects 0..9; colluders 5..6 do the opposite. *)
  for voter = 0 to 4 do
    Votes.cast t (vote voter 100 false);
    for subject = 0 to 9 do
      Votes.cast t (vote voter subject true)
    done
  done;
  for voter = 5 to 6 do
    Votes.cast t (vote voter 100 true);
    for subject = 0 to 9 do
      Votes.cast t (vote voter subject false)
    done
  done;
  (* From honest voter 0's perspective, subject 100 scores badly: the
     colluders' supporting votes carry negative correlation weight. *)
  let score = Votes.score t ~observer:0 ~subject:100 in
  check Alcotest.bool (Printf.sprintf "score %.2f below -0.5" score) true (score < -0.5);
  check (Alcotest.list Alcotest.int) "flagged as poor" [ 100 ]
    (Votes.poor_peers t ~observer:0 ~threshold:(-0.3))

let suites =
  [
    ( "reputation.votes",
      [
        Alcotest.test_case "correlation" `Quick test_correlation;
        Alcotest.test_case "newest vote wins" `Quick test_newest_vote_wins;
        Alcotest.test_case "colluders discount themselves" `Quick
          test_colluders_discount_themselves;
      ] );
  ]
