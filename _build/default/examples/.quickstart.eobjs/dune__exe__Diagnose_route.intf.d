examples/diagnose_route.mli:
