examples/quickstart.mli:
