examples/secure_delivery.ml: Array Concilium_overlay Concilium_util List Printf String
