examples/tomography_demo.mli:
