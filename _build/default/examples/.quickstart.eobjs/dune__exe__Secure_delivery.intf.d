examples/secure_delivery.mli:
