examples/tomography_demo.ml: Array Concilium_core Concilium_tomography Concilium_util Hashtbl List Printf
