examples/collusion_attack.mli:
