(* Colluding probe-flippers (paper Section 4.3 / Figure 5(b)).

   20% of the overlay inverts its probe reports strategically: "the link
   was up" when an innocent node is being judged (framing it), "the link
   was down" when a fellow colluder is judged (shielding it). This example
   measures how far the verdicts degrade and how raising the accusation
   threshold m (Figure 6) restores sub-1% formal-accusation error.

       dune exec examples/collusion_attack.exe *)

module E = Concilium_experiments
module World = Concilium_core.World
module Accusation_model = Concilium_core.Accusation_model

let () =
  let world = World.build (World.tiny_config ~seed:99L) in
  let run fraction =
    let bw =
      E.Blame_world.create ~world
        {
          (E.Blame_world.paper_config ~colluding_fraction:fraction ~seed:17L) with
          E.Blame_world.duration = 3600.;
        }
    in
    E.Blame_world.run bw ~samples:4000 ~bins:20
  in
  let honest = run 0. in
  let attacked = run 0.2 in
  Printf.printf "per-drop guilty-verdict rates (blame threshold 40%%):\n";
  Printf.printf "  %-16s innocent guilty %5.1f%%   faulty guilty %5.1f%%\n" "honest"
    (100. *. honest.E.Blame_world.p_good)
    (100. *. honest.E.Blame_world.p_faulty);
  Printf.printf "  %-16s innocent guilty %5.1f%%   faulty guilty %5.1f%%\n" "20% colluders"
    (100. *. attacked.E.Blame_world.p_good)
    (100. *. attacked.E.Blame_world.p_faulty);
  print_newline ();
  let report label result =
    match
      Accusation_model.smallest_m_below ~w:100 ~p_good:result.E.Blame_world.p_good
        ~p_faulty:result.E.Blame_world.p_faulty ~target:0.01
    with
    | Some m ->
        Printf.printf
          "  %-16s m = %d guilty verdicts per 100-drop window drives both formal-accusation \
           error rates below 1%%\n"
          label m
    | None ->
        Printf.printf "  %-16s no m achieves sub-1%% error -- verdicts too noisy\n" label
  in
  print_endline "window thresholding (w = 100):";
  report "honest" honest;
  report "20% colluders" attacked;
  print_newline ();
  print_endline
    "Collusion blurs the blame distributions but cannot defeat the window: the\n\
     attacker shifts individual verdicts, while formal accusations integrate ~100\n\
     of them.";
  (* Show a slice of the two pdfs side by side. *)
  E.Output.print (E.Blame_world.pdf_table ~title:"blame pdf, honest probing" honest);
  E.Output.print (E.Blame_world.pdf_table ~title:"blame pdf, 20% colluders" attacked)
