(* Striped-unicast tomography end to end (paper Section 3.2).

   Take one host's real probe tree from a generated world, give a few links
   known loss rates, run heavyweight striped probing, and compare the MINC
   maximum-likelihood estimates with the ground truth. Then let one leaf
   suppress acknowledgments and show the feedback-verification test
   (Section 3.3) catching it.

       dune exec examples/tomography_demo.exe *)

module World = Concilium_core.World
module Tree = Concilium_tomography.Tree
module Logical_tree = Concilium_tomography.Logical_tree
module Probing = Concilium_tomography.Probing
module Minc = Concilium_tomography.Minc
module Feedback_verify = Concilium_tomography.Feedback_verify
module Prng = Concilium_util.Prng

let () =
  let world = World.build (World.tiny_config ~seed:2025L) in
  let host = 0 in
  let tree = world.World.trees.(host) in
  let logical = Logical_tree.of_tree tree in
  Printf.printf "host %d probes a tree of %d routers, %d leaves, %d logical links\n" host
    (Tree.node_count tree)
    (Array.length (Tree.leaves tree))
    (Logical_tree.node_count logical - 1);

  (* Ground truth: a couple of specific logical chains are lossy. *)
  let rng = Prng.of_seed 3L in
  let lossy_chain = 1 + Prng.int rng (Logical_tree.node_count logical - 1) in
  let true_loss = Hashtbl.create 16 in
  Array.iter
    (fun link -> Hashtbl.replace true_loss link 0.25)
    (Logical_tree.chain logical lossy_chain);
  let loss_of_link link =
    match Hashtbl.find_opt true_loss link with Some l -> l | None -> 0.005
  in

  let rounds = Probing.probe_rounds ~rng ~loss_of_link ~tree ~count:2000 () in
  let estimate = Minc.infer_from_rounds logical rounds in
  print_endline "\nper-logical-link loss (inferred vs true):";
  for node = 1 to Logical_tree.node_count logical - 1 do
    let chain = Logical_tree.chain logical node in
    let true_chain_loss =
      1. -. Array.fold_left (fun acc link -> acc *. (1. -. loss_of_link link)) 1. chain
    in
    Printf.printf "  logical link above node %2d (%d physical): inferred %5.1f%%  true %5.1f%%%s\n"
      node (Array.length chain)
      (100. *. Minc.link_loss estimate node)
      (100. *. true_chain_loss)
      (if node = lossy_chain then "   <-- injected fault" else "")
  done;

  (* A suppressing leaf: drops 40% of its acknowledgments. *)
  let victim = 0 in
  let behavior i = if i = victim then Probing.Suppress_acks 0.4 else Probing.Honest in
  let rounds =
    Probing.probe_rounds ~rng ~loss_of_link:(fun _ -> 0.005) ~tree ~behavior ~count:2000 ()
  in
  let estimate = Minc.infer_from_rounds logical rounds in
  let suspicions =
    Feedback_verify.suspect_leaves estimate
      ~expected_chain_success:(fun node ->
        let chain = Logical_tree.chain logical node in
        0.995 ** float_of_int (Array.length chain))
      ~significance:0.001
  in
  print_endline "\nfeedback verification with leaf 0 suppressing 40% of acks:";
  if suspicions = [] then print_endline "  nobody flagged (unexpected)"
  else
    List.iter
      (fun s ->
        Printf.printf "  leaf %d flagged: acked %.1f%% of rounds, %.1f%% expected (z = %.1f)\n"
          s.Feedback_verify.leaf_index
          (100. *. s.Feedback_verify.observed_rate)
          (100. *. s.Feedback_verify.expected_rate)
          s.Feedback_verify.z)
      suspicions
