(* Secure overlay routing under attack (paper Section 2).

   Concilium's accusations, rebuttals and DHT traffic must survive a
   partially hostile overlay, which is why the paper builds on Castro's
   secure routing. This example marks a growing fraction of a Pastry
   overlay as message-eating and compares plain prefix routing with
   leaf-set-redundant transmission; it then zooms into one failed route to
   show the redundant copies at work.

       dune exec examples/secure_delivery.exe *)

module Pastry = Concilium_overlay.Pastry
module Secure_routing = Concilium_overlay.Secure_routing
module Id = Concilium_overlay.Id
module Prng = Concilium_util.Prng

let () =
  let rng = Prng.of_string_seed "secure-delivery" in
  let ids = Array.init 400 (fun _ -> Id.random rng) in
  let overlay = Pastry.build ids in
  Printf.printf "overlay of %d nodes; %d-member leaf sets\n\n" (Pastry.node_count overlay)
    (2 * Pastry.leaf_half_size overlay);
  print_endline "delivery probability (300 trials per point):";
  print_endline "  faulty   standard   redundant";
  List.iter
    (fun fraction ->
      let rate mode =
        Secure_routing.delivery_probability overlay ~rng ~faulty_fraction:fraction
          ~trials:300 ~mode
      in
      Printf.printf "  %4.0f%%    %6.1f%%    %7.1f%%\n" (100. *. fraction)
        (100. *. rate `Standard)
        (100. *. rate `Redundant))
    [ 0.; 0.1; 0.2; 0.25; 0.3; 0.4 ];

  (* Zoom in: find a key whose direct route dies, then watch the copies. *)
  let faulty v = v mod 4 = 1 (* 25% of nodes eat messages *) in
  let rec find_broken attempts =
    if attempts = 0 then None
    else begin
      let dest = Id.random rng in
      let attempt = Secure_routing.standard_delivery overlay ~from:0 ~dest ~faulty in
      if attempt.Secure_routing.delivered then find_broken (attempts - 1)
      else Some (dest, attempt)
    end
  in
  match find_broken 500 with
  | None -> print_endline "\n(no broken direct route found at this seed)"
  | Some (dest, direct) ->
      Printf.printf "\ndirect route for key %s... fails:\n  %s\n"
        (String.sub (Id.to_hex dest) 0 8)
        (String.concat " -> "
           (List.map
              (fun v -> if faulty v then Printf.sprintf "[%d!]" v else string_of_int v)
              direct.Secure_routing.hops));
      let result = Secure_routing.redundant_route overlay ~from:0 ~dest ~faulty in
      Printf.printf "redundant transmission: %d copies, delivered = %b\n"
        result.Secure_routing.copies_sent result.Secure_routing.delivered;
      List.iteri
        (fun i attempt ->
          if i < 6 then
            Printf.printf "  copy %d via %s: %s\n" i
              (if attempt.Secure_routing.via = -1 then "direct route"
               else Printf.sprintf "leaf neighbor %d" attempt.Secure_routing.via)
              (if attempt.Secure_routing.delivered then "DELIVERED" else "lost"))
        result.Secure_routing.attempts
