(* Bechamel micro-benchmarks: one Test.make per paper table/figure,
   measuring the computational kernel that regenerates it, plus the core
   protocol primitives. Run with `dune exec bench/main.exe`. *)

open Bechamel
open Toolkit
module E = Concilium_experiments
module World = Concilium_core.World
module Blame = Concilium_core.Blame
module Accusation_model = Concilium_core.Accusation_model
module Bandwidth = Concilium_core.Bandwidth
module Density_test = Concilium_overlay.Density_test
module Jump_table_model = Concilium_overlay.Jump_table_model
module Pastry = Concilium_overlay.Pastry
module Id = Concilium_overlay.Id
module Minc = Concilium_tomography.Minc
module Probing = Concilium_tomography.Probing
module Observation = Concilium_tomography.Observation
module Prng = Concilium_util.Prng

(* Shared fixtures, built once. *)
let world = lazy (World.build (World.tiny_config ~seed:2024L))

let blame_world =
  lazy
    (E.Blame_world.create ~world:(Lazy.force world)
       {
         (E.Blame_world.paper_config ~colluding_fraction:0. ~seed:3L) with
         E.Blame_world.duration = 1800.;
       })

let minc_fixture =
  lazy
    (let w = Lazy.force world in
     let tree = w.World.trees.(0) in
     let logical = w.World.logical.(0) in
     let rng = Prng.of_seed 5L in
     let rounds = Probing.probe_rounds ~rng ~loss_of_link:(fun _ -> 0.02) ~tree ~count:100 () in
     (logical, Probing.acked_matrix rounds))

let observation_fixture =
  lazy
    (let store = Observation.create () in
     let rng = Prng.of_seed 6L in
     for _ = 1 to 5_000 do
       Observation.record store
         {
           Observation.time = Prng.float rng 7200.;
           prober = Prng.int rng 50;
           link = Prng.int rng 200;
           up = Prng.bool rng;
         }
     done;
     store)

let fig1_bench =
  Test.make ~name:"fig1:occupancy-model+monte-carlo"
    (Staged.stage @@ fun () ->
     let rng = Prng.of_seed 1L in
     ignore (Jump_table_model.model ~n:10_000);
     ignore (Jump_table_model.monte_carlo_occupancy ~rng ~n:2_000 ~trials:1))

let fig2_bench =
  Test.make ~name:"fig2:density-error-rates"
    (Staged.stage @@ fun () ->
     ignore
       (Density_test.rates ~gamma:1.2
          { Density_test.n = 100_000; colluding_fraction = 0.2; suppression = false }))

let fig3_bench =
  Test.make ~name:"fig3:density-error-rates-suppression"
    (Staged.stage @@ fun () ->
     ignore
       (Density_test.rates ~gamma:1.2
          { Density_test.n = 100_000; colluding_fraction = 0.2; suppression = true }))

let fig4_bench =
  Test.make ~name:"fig4:forest-coverage-per-host"
    (Staged.stage @@ fun () ->
     let w = Lazy.force world in
     let rng = Prng.of_seed 4L in
     ignore (E.Fig4.run ~world:w ~rng ~host_sample:3))

let fig5_bench =
  Test.make ~name:"fig5:blame-judgment-x10"
    (Staged.stage @@ fun () ->
     let bw = Lazy.force blame_world in
     let rng = Prng.of_seed 7L in
     for _ = 1 to 10 do
       ignore (E.Blame_world.sample_judgment bw ~rng)
     done)

let fig6_bench =
  Test.make ~name:"fig6:accusation-error-sweep"
    (Staged.stage @@ fun () ->
     for m = 1 to 30 do
       ignore (Accusation_model.false_positive ~w:100 ~m ~p_good:0.018);
       ignore (Accusation_model.false_negative ~w:100 ~m ~p_faulty:0.938)
     done)

let bandwidth_bench =
  Test.make ~name:"sec4.4:bandwidth-model"
    (Staged.stage @@ fun () -> ignore (Bandwidth.report Bandwidth.paper_params))

let blame_eq2_bench =
  Test.make ~name:"core:blame-equation-2"
    (Staged.stage @@ fun () ->
     let store = Lazy.force observation_fixture in
     ignore
       (Blame.blame Blame.paper_config ~observations:store ~links:[| 1; 2; 3; 4; 5 |]
          ~drop_time:3600. ~exclude_prober:0 ()))

let minc_bench =
  Test.make ~name:"tomography:minc-inference-100-rounds"
    (Staged.stage @@ fun () ->
     let logical, acked = Lazy.force minc_fixture in
     ignore (Minc.infer logical ~acked))

let pastry_route_bench =
  Test.make ~name:"overlay:pastry-route"
    (Staged.stage @@ fun () ->
     let w = Lazy.force world in
     let rng = Prng.of_seed 8L in
     let dest = Id.random rng in
     ignore (Pastry.route w.World.pastry ~from:0 ~dest))

let secure_table_bench =
  Test.make ~name:"overlay:secure-table-build"
    (Staged.stage @@ fun () ->
     let rng = Prng.of_seed 9L in
     let sorted = Array.init 500 (fun i -> (Id.random rng, i)) in
     Array.sort (fun (a, _) (b, _) -> Id.compare a b) sorted;
     ignore (Concilium_overlay.Routing_table.build_secure ~owner:(fst sorted.(250)) ~sorted))

let sha256_bench =
  Test.make ~name:"crypto:sha256-1KiB"
    (Staged.stage @@ fun () -> ignore (Concilium_crypto.Sha256.digest (String.make 1024 'x')))

let chord_fixture =
  lazy
    (let rng = Prng.of_seed 10L in
     let ids = Array.init 500 (fun _ -> Id.random rng) in
     Concilium_overlay.Chord.build ids)

let chord_route_bench =
  Test.make ~name:"overlay:chord-route"
    (Staged.stage @@ fun () ->
     let overlay = Lazy.force chord_fixture in
     let rng = Prng.of_seed 11L in
     ignore (Concilium_overlay.Chord.route overlay ~from:0 ~dest:(Id.random rng)))

let secure_routing_bench =
  Test.make ~name:"overlay:redundant-route"
    (Staged.stage @@ fun () ->
     let w = Lazy.force world in
     let rng = Prng.of_seed 12L in
     ignore
       (Concilium_overlay.Secure_routing.redundant_route w.World.pastry ~from:0
          ~dest:(Id.random rng)
          ~faulty:(fun v -> v mod 7 = 3)))

let validation_bench =
  Test.make ~name:"core:snapshot-validation"
    (Staged.stage @@ fun () ->
     (* Verifying a full accusation exercises signature checks, vote
        re-validation and the blame recomputation. *)
     let pki = Concilium_crypto.Pki.create ~seed:13L in
     let cert, secret = Concilium_crypto.Pki.issue pki ~address:"b" ~node_id:"bench" in
     let signature = Concilium_crypto.Pki.sign secret "bench-payload" in
     ignore (Concilium_crypto.Pki.verify pki cert.Concilium_crypto.Pki.subject_key "bench-payload" signature))

let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]

let benchmark () =
  let tests =
    [
      fig1_bench;
      fig2_bench;
      fig3_bench;
      fig4_bench;
      fig5_bench;
      fig6_bench;
      bandwidth_bench;
      blame_eq2_bench;
      minc_bench;
      pastry_route_bench;
      secure_table_bench;
      sha256_bench;
      chord_route_bench;
      secure_routing_bench;
      validation_bench;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let test = Test.make_grouped ~name:"concilium" ~fmt:"%s %s" tests in
  let raw_results = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  (Analyze.merge ols instances results, raw_results)

let () =
  let results, _ = benchmark () in
  let open Bechamel_notty in
  let rect =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { w; h }
    | None -> { w = 120; h = 1 }
  in
  List.iter (fun v -> Unit.add v (Measure.unit v)) Instance.[ monotonic_clock ];
  Multiple.image_of_ols_results ~rect ~predictor:Measure.run results
  |> Notty_unix.eol |> Notty_unix.output_image
